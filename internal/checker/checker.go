// Package checker audits recorded protocol runs against the paper's
// correctness and optimality notions:
//
//   - Safety (Theorem 3): writes are applied at every process in an
//     order consistent with →co.
//   - Liveness / 𝒫 membership (Theorem 5): every write is applied at
//     every process; writing-semantics protocols violate the strict
//     form (values never installed), which the audit surfaces.
//   - Causal consistency (Definition 2): every read in the
//     reconstructed history is legal.
//   - Write delays (Definition 3) and their classification: a buffered
//     receipt is *necessary* iff some write in the causal past of the
//     delayed write had not been applied at the receiving process by
//     receipt time; otherwise it is an *unnecessary* delay — evidence
//     of non-optimality (Definition 5).
//
// The audit is protocol-independent: it recomputes →co from the
// observed history (Issue/Return events) and never trusts protocol
// clocks — those are cross-checked separately by optimality.go.
package checker

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/trace"
)

// SafetyViolation reports two →co-ordered writes applied out of order
// at a process.
type SafetyViolation struct {
	Proc   int
	First  history.WriteID // First →co Second ...
	Second history.WriteID // ... but Second was applied at Proc first
}

// String implements fmt.Stringer.
func (v SafetyViolation) String() string {
	return fmt.Sprintf("p%d applied %v before %v despite %v →co %v",
		v.Proc+1, v.Second, v.First, v.First, v.Second)
}

// MissingApply reports a write never applied at a process.
type MissingApply struct {
	Proc  int
	Write history.WriteID
	// Logical is true when the write was logically applied (discarded
	// under writing semantics) but its value never installed.
	Logical bool
}

// String implements fmt.Stringer.
func (m MissingApply) String() string {
	if m.Logical {
		return fmt.Sprintf("%v only logically applied (value never installed) at p%d", m.Write, m.Proc+1)
	}
	return fmt.Sprintf("%v never applied at p%d", m.Write, m.Proc+1)
}

// DuplicateApply reports a write applied (or logically applied) more
// than once at a process — a transport-level duplicate that leaked past
// the reliability sublayer's dedup into the protocol. A correct chaos
// stack never produces one: duplicated frames must die at the receiver
// as DupDiscard events, not reach Apply.
type DuplicateApply struct {
	Proc  int
	Write history.WriteID
	// Times is the number of applies observed (≥ 2).
	Times int
}

// String implements fmt.Stringer.
func (d DuplicateApply) String() string {
	return fmt.Sprintf("%v applied %d times at p%d", d.Write, d.Times, d.Proc+1)
}

// ClassifiedDelay is a write delay with its necessity verdict.
type ClassifiedDelay struct {
	trace.Delay
	// Necessary is true iff some write in the causal past of the
	// delayed write was missing at the receiving process at receipt.
	Necessary bool
	// MissingWrite names one such missing causal predecessor (the
	// witness) when Necessary.
	MissingWrite history.WriteID
}

// Report is a full audit of one run.
type Report struct {
	History   *history.History
	Causality *history.Causality

	SafetyViolations   []SafetyViolation
	LegalityViolations []history.Violation
	NotApplied         []MissingApply
	DuplicateApplies   []DuplicateApply

	Delays            []ClassifiedDelay
	NecessaryDelays   int
	UnnecessaryDelays int
	Discards          int

	// Crashes and Recoveries count crash-stops and WAL restarts;
	// CrashViolations lists protocol activity observed at down processes
	// (see crash.go).
	Crashes         int
	Recoveries      int
	CrashViolations []CrashViolation
}

// Safe reports whether the run respected →co apply ordering
// (counting logical applies, so writing-semantics runs can pass).
func (r *Report) Safe() bool { return len(r.SafetyViolations) == 0 }

// CausallyConsistent reports Definition 2 for the run's history.
func (r *Report) CausallyConsistent() bool { return len(r.LegalityViolations) == 0 }

// InP reports strict 𝒫 membership: every write's value installed at
// every process.
func (r *Report) InP() bool { return len(r.NotApplied) == 0 }

// WriteDelayOptimal reports Definition 5's observable consequence: the
// run exhibits no unnecessary delay.
func (r *Report) WriteDelayOptimal() bool { return r.UnnecessaryDelays == 0 }

// ExactlyOnce reports the reliable-channel contract the protocols
// assume: every write's update was applied at most once at every
// process (no duplicate leaked past transport dedup). Combined with
// InP (applied at least once everywhere) this is exactly-once
// application — the property a chaos run must preserve.
func (r *Report) ExactlyOnce() bool { return len(r.DuplicateApplies) == 0 }

// String renders a one-paragraph audit summary.
func (r *Report) String() string {
	out := fmt.Sprintf(
		"audit: safe=%v consistent=%v in-P=%v exactly-once=%v delays=%d (necessary=%d unnecessary=%d) discards=%d",
		r.Safe(), r.CausallyConsistent(), r.InP(), r.ExactlyOnce(),
		len(r.Delays), r.NecessaryDelays, r.UnnecessaryDelays, r.Discards)
	if r.Crashes > 0 || r.Recoveries > 0 {
		out += fmt.Sprintf(" crashes=%d recoveries=%d crash-consistent=%v",
			r.Crashes, r.Recoveries, r.CrashConsistent())
	}
	return out
}

// Audit reconstructs the history from the log, computes →co, and runs
// every check.
func Audit(log *trace.Log) (*Report, error) {
	h, err := log.History()
	if err != nil {
		return nil, fmt.Errorf("checker: reconstructing history: %w", err)
	}
	c, err := h.Causality()
	if err != nil {
		return nil, fmt.Errorf("checker: computing →co: %w", err)
	}
	r := &Report{History: h, Causality: c, Discards: log.DiscardCount()}

	r.LegalityViolations = c.CheckCausallyConsistent()
	r.auditApplies(log)
	r.classifyDelays(log)
	r.auditCrashes(log)
	return r, nil
}

// auditApplies checks safety (apply order vs →co, with discards
// counting as logical applies) and liveness (everything applied
// everywhere).
func (r *Report) auditApplies(log *trace.Log) {
	writes := r.History.Writes()
	ids := make([]history.WriteID, len(writes))
	for i, gi := range writes {
		ids[i] = r.History.Ops()[gi].ID
	}

	discarded := make(map[int]map[history.WriteID]bool)
	for p := 0; p < log.NumProcs; p++ {
		discarded[p] = make(map[history.WriteID]bool)
	}
	for _, e := range log.Events {
		if e.Kind == trace.Discard {
			discarded[e.Proc][e.Write] = true
		}
	}

	for p := 0; p < log.NumProcs; p++ {
		order := log.LogicallyAppliedAt(p)
		pos := make(map[history.WriteID]int, len(order))
		times := make(map[history.WriteID]int, len(order))
		for i, id := range order {
			if pos[id] == 0 {
				pos[id] = i + 1 // 1-based; 0 means absent
			}
			times[id]++
		}
		for _, id := range ids {
			if pos[id] == 0 {
				r.NotApplied = append(r.NotApplied, MissingApply{Proc: p, Write: id})
			} else if discarded[p][id] {
				r.NotApplied = append(r.NotApplied, MissingApply{Proc: p, Write: id, Logical: true})
			}
			if times[id] > 1 {
				r.DuplicateApplies = append(r.DuplicateApplies, DuplicateApply{Proc: p, Write: id, Times: times[id]})
			}
		}
		// Safety is about relative order: two →co-ordered writes both
		// applied at p must be applied in →co order. A missing apply is
		// a liveness hole, reported above via NotApplied, not a safety
		// violation (WS-send legitimately never propagates suppressed
		// writes, yet applies every propagated pair in order).
		for i, a := range ids {
			for j, b := range ids {
				if i == j || !r.Causality.WriteBefore(a, b) {
					continue
				}
				pa, pb := pos[a], pos[b]
				if pa != 0 && pb != 0 && pa > pb {
					r.SafetyViolations = append(r.SafetyViolations, SafetyViolation{Proc: p, First: a, Second: b})
				}
			}
		}
	}
}

// classifyDelays walks each process's event sequence, maintaining the
// applied-set, and classifies every buffered receipt per Definition 3.
func (r *Report) classifyDelays(log *trace.Log) {
	resolved := make(map[delayKey]trace.Delay)
	for _, d := range log.Delays() {
		resolved[delayKey{d.Proc, d.Write}] = d
	}

	applied := make([]map[history.WriteID]bool, log.NumProcs)
	for p := range applied {
		applied[p] = make(map[history.WriteID]bool)
	}
	for _, e := range log.Events {
		switch e.Kind {
		case trace.Issue, trace.Apply, trace.Discard:
			applied[e.Proc][e.Write] = true
		case trace.Receipt:
			if !e.Buffered {
				continue
			}
			cd := ClassifiedDelay{}
			if d, ok := resolved[delayKey{e.Proc, e.Write}]; ok {
				cd.Delay = d
			} else {
				cd.Delay = trace.Delay{Proc: e.Proc, Write: e.Write, ReceiptAt: e.Time, AppliedAt: e.Time}
			}
			widx := r.History.WriteIndex(e.Write)
			if widx >= 0 {
				for _, prior := range r.Causality.WritesBefore(widx) {
					if !applied[e.Proc][prior] {
						cd.Necessary = true
						cd.MissingWrite = prior
						break
					}
				}
			}
			if cd.Necessary {
				r.NecessaryDelays++
			} else {
				r.UnnecessaryDelays++
			}
			r.Delays = append(r.Delays, cd)
		}
	}
}

type delayKey struct {
	p int
	w history.WriteID
}
