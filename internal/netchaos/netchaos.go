// Package netchaos injects connection-level faults into the serving
// tier's TCP path, the socket-layer counterpart of the replica
// transport's chaos layer (internal/transport.Chaos): where that one
// loses and reorders inter-replica protocol messages, this one abuses
// the client-facing byte streams — connection resets mid-request,
// read/write stalls, truncated writes, and connections killed at
// accept time.
//
// Faults are drawn from a seeded source, so a conformance run under
// chaos draws the same fault schedule every time (modulo goroutine
// interleaving, which decides which connection draws which fault). The
// wrapper composes with any net.Listener: the serving tier takes it
// through service.Config.WrapListener, dsmd through the -chaos-*
// flags, and the conformance harness directly.
//
// The point of the exercise is the fault-tolerance contract of the
// serving tier (ISSUE 7): under any schedule this package can produce,
// every client call must still resolve — success or a typed retryable
// error, never a hang — no session guarantee may break, and no retried
// write may apply twice.
package netchaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config parameterizes the fault mix. All probabilities are per
// opportunity: KillProb and StallProb per Read/Write call, TruncProb
// per Write call, AcceptProb per accepted connection. Zero values
// inject nothing.
type Config struct {
	// Seed drives the fault schedule; runs with the same seed draw the
	// same decision sequence.
	Seed int64
	// KillProb resets the connection on a Read or Write: the underlying
	// socket closes and the call fails. Both ends see the break.
	KillProb float64
	// StallProb pauses a Read or Write for up to StallMax before it
	// proceeds — the slow-replica / congested-path fault.
	StallProb float64
	// StallMax bounds one stall; 0 defaults to 20ms.
	StallMax time.Duration
	// TruncProb truncates a Write: a strict prefix of the buffer goes
	// out, then the connection closes. The peer sees a torn frame.
	TruncProb float64
	// AcceptProb kills a connection immediately after accept, before a
	// single byte is served.
	AcceptProb float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"KillProb", c.KillProb}, {"StallProb", c.StallProb},
		{"TruncProb", c.TruncProb}, {"AcceptProb", c.AcceptProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netchaos: %s = %v, want [0,1]", p.name, p.v)
		}
	}
	if c.StallMax < 0 {
		return fmt.Errorf("netchaos: StallMax = %v, want >= 0", c.StallMax)
	}
	return nil
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.KillProb > 0 || c.StallProb > 0 || c.TruncProb > 0 || c.AcceptProb > 0
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.StallMax == 0 {
		c.StallMax = 20 * time.Millisecond
	}
	return c
}

// Stats counts the faults a listener has injected, for tests and the
// chaos experiment's reporting.
type Stats struct {
	// Kills is connections reset mid-I/O; AcceptKills at accept time.
	Kills, AcceptKills uint64
	// Stalls is delayed I/O calls; Truncs is torn writes.
	Stalls, Truncs uint64
}

// Listener wraps an inner listener so every accepted connection
// injects the configured faults.
type Listener struct {
	net.Listener
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// Wrap returns ln with the fault mix of cfg layered on every accepted
// connection. A config that injects nothing returns ln unchanged.
func Wrap(ln net.Listener, cfg Config) net.Listener {
	if !cfg.Enabled() {
		return ln
	}
	return &Listener{
		Listener: ln,
		cfg:      cfg.withDefaults(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Wrapper curries Wrap for service.Config.WrapListener.
func Wrapper(cfg Config) func(net.Listener) net.Listener {
	return func(ln net.Listener) net.Listener { return Wrap(ln, cfg) }
}

// Stats snapshots the injected-fault counters.
func (l *Listener) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// RegisterMetrics publishes the fault counters on reg as scrape-time
// gauges, so a chaos run's injected-fault mix sits next to the serving
// tier's own metrics on the same /metrics page:
//
//	dsm_chaos_kills, dsm_chaos_accept_kills, dsm_chaos_stalls,
//	dsm_chaos_truncs
func (l *Listener) RegisterMetrics(reg *obs.Registry) {
	snap := func(f func(Stats) uint64) func() int64 {
		return func() int64 { return int64(f(l.Stats())) }
	}
	reg.GaugeFunc("dsm_chaos_kills", "connections reset mid-I/O by the chaos listener",
		snap(func(s Stats) uint64 { return s.Kills }))
	reg.GaugeFunc("dsm_chaos_accept_kills", "connections killed at accept by the chaos listener",
		snap(func(s Stats) uint64 { return s.AcceptKills }))
	reg.GaugeFunc("dsm_chaos_stalls", "I/O calls stalled by the chaos listener",
		snap(func(s Stats) uint64 { return s.Stalls }))
	reg.GaugeFunc("dsm_chaos_truncs", "writes truncated by the chaos listener",
		snap(func(s Stats) uint64 { return s.Truncs }))
}

// roll draws one uniform [0,1) decision from the seeded source.
func (l *Listener) roll() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// stallFor draws a stall duration in (0, StallMax].
func (l *Listener) stallFor() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.rng.Int63n(int64(l.cfg.StallMax))) + 1
}

func (l *Listener) count(f func(*Stats)) {
	l.mu.Lock()
	f(&l.stats)
	l.mu.Unlock()
}

// Accept implements net.Listener: accepted connections carry the fault
// mix, and with AcceptProb the connection dies on the spot — the
// accept-time failure the serving tier must shrug off.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		inner, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.cfg.AcceptProb > 0 && l.roll() < l.cfg.AcceptProb {
			inner.Close()
			l.count(func(s *Stats) { s.AcceptKills++ })
			// The server never sees this connection; the client observes
			// an immediate reset on first use.
			continue
		}
		return &conn{Conn: inner, l: l}, nil
	}
}

// conn is one chaos-wrapped connection.
type conn struct {
	net.Conn
	l *Listener

	closeOnce sync.Once
	closeErr  error
}

// errReset is returned (wrapping net.ErrClosed semantics) for an
// injected connection reset.
type errReset struct{ op string }

func (e errReset) Error() string { return "netchaos: injected connection reset during " + e.op }

// Timeout and Temporary mark the error as non-temporary, like a real
// ECONNRESET.
func (errReset) Timeout() bool   { return false }
func (errReset) Temporary() bool { return false }

// kill closes the underlying socket and reports the injected reset.
func (c *conn) kill(op string) error {
	c.Close()
	c.l.count(func(s *Stats) { s.Kills++ })
	return errReset{op: op}
}

// maybeStall injects a bounded delay.
func (c *conn) maybeStall() {
	if c.l.cfg.StallProb > 0 && c.l.roll() < c.l.cfg.StallProb {
		c.l.count(func(s *Stats) { s.Stalls++ })
		time.Sleep(c.l.stallFor())
	}
}

// Read implements net.Conn with stall and reset faults.
func (c *conn) Read(p []byte) (int, error) {
	c.maybeStall()
	if c.l.cfg.KillProb > 0 && c.l.roll() < c.l.cfg.KillProb {
		return 0, c.kill("read")
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with stall, truncation and reset faults.
// A truncated write sends a strict prefix and then resets, so the peer
// decodes a torn frame — the hardest case for the wire codec.
func (c *conn) Write(p []byte) (int, error) {
	c.maybeStall()
	if c.l.cfg.KillProb > 0 && c.l.roll() < c.l.cfg.KillProb {
		return 0, c.kill("write")
	}
	if len(p) > 1 && c.l.cfg.TruncProb > 0 && c.l.roll() < c.l.cfg.TruncProb {
		n, err := c.Conn.Write(p[:len(p)/2])
		c.l.count(func(s *Stats) { s.Truncs++ })
		if err != nil {
			return n, err
		}
		return n, c.kill("write")
	}
	return c.Conn.Write(p)
}

// Close implements net.Conn idempotently (kill and the owner may both
// close).
func (c *conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.Conn.Close() })
	return c.closeErr
}
