package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MetadataName identifies the metadata-codec scorecard experiment in
// dsmbench/v1 documents; CheckMetadataRegression matches baseline and
// current results by it.
const MetadataName = "E-metadata"

// metaModes is the mode sweep of the metadata experiment.
var metaModes = []protocol.MetaMode{protocol.MetaOff, protocol.MetaDelta, protocol.MetaStab, protocol.MetaAuto}

// MetadataCompression is the causality-metadata codec experiment: for
// each system size it generates OptP steady-state update streams in the
// simulator, then replays every sender's per-link stream through one
// encoder/decoder pair per codec mode, reporting clock bytes, wire
// bytes and codec time per update. One pair per sender is exact, not a
// sample: a broadcast protocol ships the identical update sequence on
// every outgoing link of a sender, so all of a sender's links carry the
// same bytes. P = 256 exceeds the TCP transport's one-byte sender-id
// cap on live runs, which is why the codec is measured offline here.
func MetadataCompression() (Result, error) {
	return metadataSweep([]int{8, 64, 256}, []uint64{11, 23})
}

// metadataSweep is the parameterized body of MetadataCompression, kept
// separate so tests can run a tiny sweep fast.
func metadataSweep(ps []int, seeds []uint64) (Result, error) {
	r := Result{
		Name:   MetadataName,
		Desc:   "causality-metadata codec on OptP steady-state streams (FIFO links): bytes and time per update",
		Header: []string{"procs", "mode", "clock-B/op", "wire-B/op", "reduction", "codec-ns/op"},
	}
	for _, n := range ps {
		var streams [][]protocol.Update
		for _, seed := range seeds {
			ops := 2048 / n
			if ops < 8 {
				ops = 8
			}
			vars := n
			if vars > 32 {
				vars = 32
			}
			scripts, err := workload.Scripts(workload.Config{
				Procs: n, Vars: vars, OpsPerProc: ops, WriteRatio: 0.6,
				ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
			})
			if err != nil {
				return r, err
			}
			res, err := sim.Run(sim.Config{
				Procs: n, Vars: vars, Protocol: protocol.OptP,
				Latency: sim.NewUniformLatency(1, 150, seed*13+7),
				FIFO:    true,
			}, scripts)
			if err != nil {
				return r, fmt.Errorf("experiments: %s n=%d seed %d: %w", MetadataName, n, seed, err)
			}
			streams = append(streams, senderStreams(res.Updates, n)...)
		}
		var offClock float64
		for _, mode := range metaModes {
			clockB, wireB, nsOp, err := codecCost(streams, mode)
			if err != nil {
				return r, fmt.Errorf("experiments: %s n=%d mode %v: %w", MetadataName, n, mode, err)
			}
			reduction := "-"
			if mode == protocol.MetaOff {
				offClock = clockB
			} else if offClock > 0 {
				reduction = fmt.Sprintf("%.1f%%", 100*(1-clockB/offClock))
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(n), mode.String(),
				fmt.Sprintf("%.1f", clockB),
				fmt.Sprintf("%.1f", wireB),
				reduction,
				fmt.Sprintf("%.0f", nsOp),
			})
		}
	}
	return r, nil
}

// senderStreams groups updates by sender in sequence order — the exact
// byte stream each of the sender's outgoing links carries.
func senderStreams(updates map[history.WriteID]protocol.Update, n int) [][]protocol.Update {
	maxSeq := make([]int, n)
	for id := range updates {
		if id.Seq > maxSeq[id.Proc] {
			maxSeq[id.Proc] = id.Seq
		}
	}
	var out [][]protocol.Update
	for p := 0; p < n; p++ {
		if maxSeq[p] == 0 {
			continue
		}
		ordered := make([]protocol.Update, 0, maxSeq[p])
		for seq := 1; seq <= maxSeq[p]; seq++ {
			if u, ok := updates[history.WriteID{Proc: p, Seq: seq}]; ok {
				ordered = append(ordered, u)
			}
		}
		out = append(out, ordered)
	}
	return out
}

// codecCost replays every stream through a fresh per-stream
// encoder/decoder pair under mode, verifying the round trip once and
// then timing three repetitions (best-of). Returns mean clock bytes,
// mean wire bytes, and mean codec (encode+decode) nanoseconds per
// update.
func codecCost(streams [][]protocol.Update, mode protocol.MetaMode) (clockB, wireB, nsOp float64, err error) {
	var meta, wire, count int64
	buf := make([]byte, 0, 4096)
	// Untimed verification pass: the benchmark must never report the
	// speed of a codec that corrupts clocks.
	for _, st := range streams {
		enc := protocol.NewUpdateEncoder(mode)
		dec := protocol.NewUpdateDecoder(mode)
		for _, u := range st {
			var m int
			buf, m = enc.Append(buf[:0], u)
			out, k, dm, derr := dec.Decode(buf)
			if derr != nil {
				return 0, 0, 0, derr
			}
			if k != len(buf) || dm != m {
				return 0, 0, 0, fmt.Errorf("codec consumed %d of %d bytes (meta %d vs %d)", k, len(buf), dm, m)
			}
			if out.Clock.Len() != u.Clock.Len() || (u.Clock.Len() > 0 && !out.Clock.Equal(u.Clock)) {
				return 0, 0, 0, fmt.Errorf("codec corrupted clock of %v", u.ID)
			}
			meta += int64(m)
			wire += int64(len(buf))
			count++
		}
	}
	if count == 0 {
		return 0, 0, 0, fmt.Errorf("no updates to measure")
	}
	best := int64(-1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for _, st := range streams {
			enc := protocol.NewUpdateEncoder(mode)
			dec := protocol.NewUpdateDecoder(mode)
			for _, u := range st {
				buf, _ = enc.Append(buf[:0], u)
				if _, _, _, derr := dec.Decode(buf); derr != nil {
					return 0, 0, 0, derr
				}
			}
		}
		if elapsed := time.Since(start).Nanoseconds(); best < 0 || elapsed < best {
			best = elapsed
		}
	}
	n := float64(count)
	return float64(meta) / n, float64(wire) / n, float64(best) / n, nil
}

// CheckMetadataRegression gates the metadata scorecard against the
// committed baseline: matching (procs, mode) rows may not regress by
// more than tolerance (0.2 = 20%) on clock-B/op or codec-ns/op, and the
// headline compression claim must hold in the CURRENT results — at 64
// processes, delta and auto must ship at most half of MetaOff's clock
// bytes per update. Rows present in only one document are ignored, so
// extending the sweep doesn't break the gate. Improvements never fail.
func CheckMetadataRegression(current []Result, baseline Scorecard, tolerance float64) error {
	base, err := metadataCells(baseline.Experiments)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", MetadataName)
	}
	cur, err := metadataCells(current)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", MetadataName)
	}
	for key, want := range base {
		got, ok := cur[key]
		if !ok {
			continue
		}
		if ceiling := want.clockB * (1 + tolerance); got.clockB > ceiling {
			return fmt.Errorf("experiments: metadata regression at %s: %.1f clock-B/op > %.1f (baseline %.1f + %.0f%% tolerance)",
				key, got.clockB, ceiling, want.clockB, tolerance*100)
		}
		if ceiling := want.nsOp * (1 + tolerance); got.nsOp > ceiling {
			return fmt.Errorf("experiments: metadata regression at %s: %.0f ns/op > %.0f (baseline %.0f + %.0f%% tolerance)",
				key, got.nsOp, ceiling, want.nsOp, tolerance*100)
		}
	}
	off, ok := cur["64/off"]
	if !ok {
		return nil // sweep without the headline size; nothing more to assert
	}
	for _, mode := range []string{"delta", "auto"} {
		got, ok := cur["64/"+mode]
		if !ok {
			return fmt.Errorf("experiments: current results have a 64/off row but no 64/%s", mode)
		}
		if got.clockB > 0.5*off.clockB {
			return fmt.Errorf("experiments: %s at 64 procs ships %.1f clock-B/op, more than half of off's %.1f — the compression claim fails",
				mode, got.clockB, off.clockB)
		}
	}
	return nil
}

// metadataCell is one parsed (procs, mode) row of the metadata table.
type metadataCell struct {
	clockB, nsOp float64
}

// metadataCells extracts "procs/mode" → cell from a metadata result.
func metadataCells(results []Result) (map[string]metadataCell, error) {
	out := map[string]metadataCell{}
	for _, r := range results {
		if r.Name != MetadataName {
			continue
		}
		procsCol, modeCol, clockCol, nsCol := -1, -1, -1, -1
		for i, h := range r.Header {
			switch h {
			case "procs":
				procsCol = i
			case "mode":
				modeCol = i
			case "clock-B/op":
				clockCol = i
			case "codec-ns/op":
				nsCol = i
			}
		}
		if procsCol < 0 || modeCol < 0 || clockCol < 0 || nsCol < 0 {
			return nil, fmt.Errorf("experiments: %s table lacks procs/mode/clock-B/op/codec-ns/op columns (header %v)", r.Name, r.Header)
		}
		for _, row := range r.Rows {
			if len(row) <= procsCol || len(row) <= modeCol || len(row) <= clockCol || len(row) <= nsCol {
				continue
			}
			clockB, err := strconv.ParseFloat(row[clockCol], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s clock-B/op cell %q: %w", r.Name, row[clockCol], err)
			}
			nsOp, err := strconv.ParseFloat(row[nsCol], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s codec-ns/op cell %q: %w", r.Name, row[nsCol], err)
			}
			out[row[procsCol]+"/"+row[modeCol]] = metadataCell{clockB: clockB, nsOp: nsOp}
		}
	}
	return out, nil
}
