// Command dsmrun drives a live causal-memory cluster from the command
// line: it runs a seeded random workload over real goroutines and a
// jittered transport, waits for quiescence, audits the trace against
// the paper's correctness and optimality properties, and prints the
// scorecard. With -trace it dumps the full event log (CSV or JSON).
//
// Usage:
//
//	dsmrun -protocol OptP -procs 4 -vars 4 -ops 100 -jitter 2ms
//	dsmrun -protocol ANBKH -trace csv > run.csv
//	dsmrun -protocol PartialRep -replication-factor 2  # partial replication
//	dsmrun -protocol PartialRep -share-sets 0,1/1,2/2,3/3,0
//	dsmrun -loss 0.2 -dup 0.1                      # chaos stack
//	dsmrun -partition 5ms-25ms:0,1/2,3             # timed split-brain
//	dsmrun -wal-dir /tmp/dsm -crash 1@5ms -restart-after 20ms
//	dsmrun -heartbeat 1ms -suspect-after 5ms       # failure detector
//	dsmrun -meta-codec delta                       # compress clock metadata
//	dsmrun -debug-addr :6060                       # live /metrics + pprof
//	dsmrun -report 5s                              # periodic stats line
//	dsmrun -stream run.jsonl -spans spans.jsonl    # live event tee + spans
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	proto := flag.String("protocol", "OptP", "protocol: OptP, ANBKH, WS-recv, WS-send, OptP-noreadmerge, PartialRep")
	procs := flag.Int("procs", 4, "number of processes")
	vars := flag.Int("vars", 4, "number of shared variables")
	ops := flag.Int("ops", 100, "operations per process")
	writeRatio := flag.Float64("write-ratio", 0.6, "probability an op is a write")
	jitter := flag.Duration("jitter", time.Millisecond, "max artificial message delay")
	fifo := flag.Bool("fifo", false, "preserve per-link FIFO order")
	seed := flag.Int64("seed", 1, "workload and transport seed")
	replFactor := flag.Int("replication-factor", 0, "partial replication: store each variable at this many processes (Modulo assignment; needs -protocol PartialRep; 0: full replication)")
	shareSets := flag.String("share-sets", "", "partial replication: explicit per-variable process groups, e.g. 0,1/1,2/2,0 (needs -protocol PartialRep)")
	traceOut := flag.String("trace", "", "dump the event trace: csv, json, or diagram")
	useTCP := flag.Bool("tcp", false, "run over real loopback TCP sockets instead of channels")
	metaCodec := flag.String("meta-codec", "off", "causality-metadata codec on inter-replica links: off, delta, stab, auto")
	loss := flag.Float64("loss", 0, "chaos: message loss probability [0,1)")
	dup := flag.Float64("dup", 0, "chaos: message duplication probability [0,1]")
	reorder := flag.Float64("reorder", 0, "chaos: reorder-burst probability [0,1]")
	reorderDelay := flag.Duration("reorder-delay", 0, "chaos: hold-back for burst-delayed messages (default 2ms)")
	partition := flag.String("partition", "", "chaos: timed link cut, e.g. 5ms-25ms:0,1/2,3")
	rto := flag.Duration("rto", 0, "reliability: initial retransmit timeout (default 2×jitter+1ms)")
	backoffMax := flag.Duration("backoff-max", 0, "reliability: retransmission backoff cap (default 20×rto)")
	walDir := flag.String("wal-dir", "", "crash recovery: write-ahead log directory (one subdir per process)")
	walSync := flag.Bool("wal-sync", false, "crash recovery: fsync the journal after every record")
	snapshotEvery := flag.Int("snapshot-every", 0, "crash recovery: journal records between snapshots (default 256)")
	heartbeat := flag.Duration("heartbeat", 0, "failure detector: probe interval (0 disables)")
	suspectAfter := flag.Duration("suspect-after", 0, "failure detector: silence threshold (default 4×heartbeat)")
	crash := flag.String("crash", "", "crash schedule, e.g. 1@5ms or 1@5ms,2@10ms (proc@start)")
	restartAfter := flag.Duration("restart-after", 0, "restart each crashed process this long after its crash (0: stay down)")
	debugAddr := flag.String("debug-addr", "", "observability: serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	report := flag.Duration("report", 0, "observability: print a live stats line at this interval (0 disables)")
	stream := flag.String("stream", "", "observability: tee the live event stream as JSONL to this file (\"-\" for stderr)")
	spansOut := flag.String("spans", "", "observability: write causal-propagation spans as JSONL to this file after the run")
	flag.Parse()

	if flag.NArg() > 0 {
		usage("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	kind, err := protocol.ParseKind(*proto)
	if err != nil {
		usage("%v", err)
	}
	if *procs < 2 {
		usage("-procs must be at least 2, got %d", *procs)
	}
	if *vars < 1 {
		usage("-vars must be at least 1, got %d", *vars)
	}
	if *ops < 1 {
		usage("-ops must be at least 1, got %d", *ops)
	}
	if *writeRatio < 0 || *writeRatio > 1 {
		usage("-write-ratio must be in [0,1], got %g", *writeRatio)
	}
	if *replFactor < 0 || *replFactor > *procs {
		usage("-replication-factor must be in [1,%d], got %d", *procs, *replFactor)
	}
	if *replFactor > 0 && *shareSets != "" {
		usage("-replication-factor and -share-sets are mutually exclusive")
	}
	var sets [][]int
	if *replFactor > 0 {
		sets = protocol.Modulo(*vars, *procs, *replFactor).Raw()
	}
	if *shareSets != "" {
		var err error
		if sets, err = parseShareSets(*shareSets, *procs, *vars); err != nil {
			usage("-share-sets: %v", err)
		}
	}
	if sets != nil && kind != protocol.PartialRep {
		usage("-replication-factor and -share-sets need -protocol PartialRep, got %v", kind)
	}
	if *jitter < 0 {
		usage("-jitter must not be negative, got %v", *jitter)
	}
	if *loss < 0 || *loss >= 1 {
		usage("-loss must be in [0,1), got %g", *loss)
	}
	if *dup < 0 || *dup > 1 {
		usage("-dup must be in [0,1], got %g", *dup)
	}
	if *reorder < 0 || *reorder > 1 {
		usage("-reorder must be in [0,1], got %g", *reorder)
	}
	if *reorderDelay < 0 || *rto < 0 || *backoffMax < 0 {
		usage("durations must not be negative")
	}
	if *snapshotEvery < 0 {
		usage("-snapshot-every must not be negative, got %d", *snapshotEvery)
	}
	if *heartbeat < 0 || *suspectAfter < 0 || *restartAfter < 0 {
		usage("detector/restart durations must not be negative")
	}
	if *suspectAfter > 0 && *heartbeat == 0 {
		usage("-suspect-after needs -heartbeat")
	}
	if *report < 0 {
		usage("-report must not be negative, got %v", *report)
	}
	meta, err := protocol.ParseMetaMode(*metaCodec)
	if err != nil {
		usage("-meta-codec: %v", err)
	}

	chaos := transport.ChaosConfig{
		LossRate: *loss, DupRate: *dup,
		ReorderRate: *reorder, ReorderDelay: *reorderDelay,
		Seed: *seed,
	}
	if *partition != "" {
		p, err := parsePartition(*partition, *procs)
		if err != nil {
			usage("%v", err)
		}
		chaos.Partitions = []transport.Partition{p}
	}
	crashes, err := parseCrashes(*crash, *procs, *restartAfter)
	if err != nil {
		usage("%v", err)
	}
	if *restartAfter > 0 && len(crashes) == 0 {
		usage("-restart-after needs -crash")
	}
	if len(crashes) > 0 && *walDir == "" && *restartAfter > 0 {
		usage("-crash with -restart-after needs -wal-dir")
	}
	cfg := core.Config{
		Processes: *procs, Variables: *vars, Protocol: kind,
		ShareSets: sets,
		MaxDelay:  *jitter, FIFO: *fifo, Seed: *seed,
		Chaos:             chaos,
		RetransmitTimeout: *rto,
		BackoffMax:        *backoffMax,
		WALDir:            *walDir,
		WALSync:           *walSync,
		SnapshotEvery:     *snapshotEvery,
		HeartbeatInterval: *heartbeat,
		SuspectAfter:      *suspectAfter,
		Crashes:           crashes,
		Meta:              meta,
	}

	// Observability wiring. The observer is built only when a flag asks
	// for it, so plain runs pay nothing on the event hot path. Bind and
	// open failures surface as usage errors before the cluster starts.
	var observer *obs.Observer
	if *debugAddr != "" || *report > 0 || *spansOut != "" {
		observer = obs.NewObserver(obs.Options{Procs: *procs, Protocol: kind.String()})
		cfg.Obs = observer
		obs.RegisterBuildInfo(observer.Registry(), "dsmrun")
	}
	var sink *obs.JSONLSink
	if *stream != "" {
		w := os.Stderr
		if *stream != "-" {
			f, err := os.Create(*stream)
			if err != nil {
				usage("-stream: %v", err)
			}
			defer f.Close()
			w = f
		}
		sink = obs.NewJSONLSink(w, 0)
		cfg.Sink = sink
		if observer != nil {
			sink.RegisterMetrics(observer.Registry(), obs.L("protocol", kind.String()))
		}
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, observer.Registry())
		if err != nil {
			usage("-debug-addr: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dsmrun: debug endpoints on http://%s\n", srv.Addr())
	}
	var reporter *obs.Reporter
	if *report > 0 {
		reporter = obs.NewReporter(observer, os.Stderr, *report)
		reporter.Start()
	}
	if *useTCP {
		if chaos.Enabled() {
			usage("chaos flags apply to the built-in channel transport, not -tcp")
		}
		if *walDir != "" || *heartbeat > 0 || len(crashes) > 0 {
			usage("crash-recovery flags apply to the built-in channel transport, not -tcp")
		}
		if sets != nil {
			usage("partial-replication flags apply to the built-in channel transport, not -tcp")
		}
		// The TCP transport codes the wire per connection (with resync on
		// reconnect), so the codec lives inside it rather than in core.
		tn, err := transport.NewTCPMeta(*procs, meta)
		if err != nil {
			fatal(err)
		}
		cfg.Transport = tn
		cfg.Meta = protocol.MetaOff
		cfg.MaxDelay = 0 // real sockets provide their own timing
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	codecStats := func() (transport.CodecStats, bool) { return transport.CodecStats{}, false }
	if meta.Enabled() {
		if tn, ok := cfg.Transport.(*transport.TCPNet); ok {
			codecStats = func() (transport.CodecStats, bool) { return tn.Stats(), true }
		} else if codec := c.MetaCodec(); codec != nil {
			codecStats = func() (transport.CodecStats, bool) { return codec.Stats(), true }
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < *procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(p)))
			for i := 1; i <= *ops; i++ {
				if rng.Float64() < *writeRatio {
					err := c.Node(p).Write(rng.Intn(*vars), int64(p)*1_000_000+int64(i))
					// A scheduled crash may take this process down
					// mid-workload; its remaining ops are simply lost,
					// like a client talking to a dead server.
					if errors.Is(err, core.ErrDown) {
						continue
					}
					if err != nil {
						fatal(err)
					}
				} else {
					_, err := c.Node(p).Read(rng.Intn(*vars))
					if errors.Is(err, core.ErrDown) {
						continue
					}
					if err != nil {
						fatal(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Give scheduled restarts a chance to run before quiescing, so the
	// audit sees the recovered process catch up. Quiesce itself skips
	// down processes, so without this the log could be cut mid-restart.
	var deadline time.Duration
	restarts := 0
	for _, w := range crashes {
		if w.End > deadline {
			deadline = w.End
		}
		if w.End > 0 {
			restarts++
		}
	}
	if until := time.Until(c.StartTime().Add(deadline)); until > 0 {
		time.Sleep(until)
	}
	for wait := time.Now(); c.Log().RecoverCount() < restarts && time.Since(wait) < 5*time.Second; {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	if err := c.Quiesce(ctx); err != nil {
		fatal(err)
	}
	quiesceDur := time.Since(start)

	if reporter != nil {
		reporter.Close()
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fatal(fmt.Errorf("stream sink: %w", err))
		}
		if n := sink.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "dsmrun: stream sink dropped %d events\n", n)
		}
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fatal(err)
		}
		if err := observer.WriteSpans(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	log := c.Log()
	switch *traceOut {
	case "":
	case "csv":
		if err := log.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "json":
		if err := log.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "diagram":
		fmt.Print(trace.Diagram{MaxRows: 200}.Render(log))
		return
	default:
		usage("unknown trace format %q", *traceOut)
	}

	fmt.Println(log.Stats(kind.String()))
	fmt.Printf("quiesced in %v\n", quiesceDur.Round(time.Microsecond))
	if st, ok := codecStats(); ok {
		fmt.Printf("codec %v: %d frames, %d clock bytes, %d payload bytes\n",
			meta, st.Frames, st.MetaBytes, st.PayloadBytes)
	}

	rep, err := checker.Audit(log)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("audit: safe=%v causally-consistent=%v in-P=%v exactly-once=%v\n",
		rep.Safe(), rep.CausallyConsistent(), rep.InP(), rep.ExactlyOnce())
	fmt.Printf("delays: %d necessary, %d unnecessary (write-delay optimal: %v)\n",
		rep.NecessaryDelays, rep.UnnecessaryDelays, rep.WriteDelayOptimal())
	if rep.PartialReplication {
		fmt.Printf("partial replication: share-respected=%v, %d reads forwarded (%d delayed)\n",
			rep.ShareRespected(), log.ReadFwdCount(), log.ReadDelayCount())
	}
	if rep.Crashes > 0 {
		fmt.Printf("crashes: %d, recoveries: %d (crash-consistent: %v)\n",
			rep.Crashes, rep.Recoveries, rep.CrashConsistent())
	}
	if n := len(rep.SafetyViolations); n > 0 {
		fmt.Printf("SAFETY VIOLATIONS (%d):\n", n)
		for _, v := range rep.SafetyViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.LegalityViolations); n > 0 {
		fmt.Printf("ILLEGAL READS (%d):\n", n)
		for _, v := range rep.LegalityViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.DuplicateApplies); n > 0 {
		fmt.Printf("DUPLICATE APPLIES (%d):\n", n)
		for _, v := range rep.DuplicateApplies {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.StrayApplies); n > 0 {
		fmt.Printf("STRAY APPLIES (%d):\n", n)
		for _, v := range rep.StrayApplies {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.CrashViolations); n > 0 {
		fmt.Printf("CRASH VIOLATIONS (%d):\n", n)
		for _, v := range rep.CrashViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
}

// parseCrashes parses "p@start[,p@start...]" into crash windows, each
// restarting restartAfter later (0: the process stays down).
func parseCrashes(s string, procs int, restartAfter time.Duration) ([]core.CrashWindow, error) {
	if s == "" {
		return nil, nil
	}
	var out []core.CrashWindow
	for _, f := range strings.Split(s, ",") {
		procS, startS, ok := strings.Cut(strings.TrimSpace(f), "@")
		if !ok {
			return nil, fmt.Errorf("crash %q: want proc@start, e.g. 1@5ms", f)
		}
		p, err := strconv.Atoi(procS)
		if err != nil {
			return nil, fmt.Errorf("crash %q: %w", f, err)
		}
		if p < 0 || p >= procs {
			return nil, fmt.Errorf("crash %q: process %d out of range [0,%d)", f, p, procs)
		}
		start, err := time.ParseDuration(startS)
		if err != nil {
			return nil, fmt.Errorf("crash %q: %w", f, err)
		}
		if start < 0 {
			return nil, fmt.Errorf("crash %q: negative start", f)
		}
		w := core.CrashWindow{Proc: p, Start: start}
		if restartAfter > 0 {
			w.End = start + restartAfter
		}
		out = append(out, w)
	}
	return out, nil
}

// parseShareSets parses "0,1/1,2/2,0" — one comma-separated process
// group per variable, in variable order — into a share-set assignment
// validated against the process and variable counts.
func parseShareSets(s string, procs, vars int) ([][]int, error) {
	groups := strings.Split(s, "/")
	if len(groups) != vars {
		return nil, fmt.Errorf("share-sets %q: %d groups for %d variables", s, len(groups), vars)
	}
	out := make([][]int, len(groups))
	for x, g := range groups {
		set, err := parseProcs(g, procs)
		if err != nil {
			return nil, fmt.Errorf("share-sets variable %d: %w", x, err)
		}
		out[x] = set
	}
	if _, err := protocol.NewShareSets(out, procs); err != nil {
		return nil, err
	}
	return out, nil
}

// parsePartition parses "start-end:a,b/c,d" into a timed link cut
// between process groups {a,b} and {c,d}.
func parsePartition(s string, procs int) (transport.Partition, error) {
	var p transport.Partition
	window, groups, ok := strings.Cut(s, ":")
	if !ok {
		return p, fmt.Errorf("partition %q: want start-end:group/group", s)
	}
	startS, endS, ok := strings.Cut(window, "-")
	if !ok {
		return p, fmt.Errorf("partition window %q: want start-end", window)
	}
	var err error
	if p.Start, err = time.ParseDuration(startS); err != nil {
		return p, fmt.Errorf("partition start: %w", err)
	}
	if p.End, err = time.ParseDuration(endS); err != nil {
		return p, fmt.Errorf("partition end: %w", err)
	}
	aS, bS, ok := strings.Cut(groups, "/")
	if !ok {
		return p, fmt.Errorf("partition groups %q: want group/group", groups)
	}
	if p.A, err = parseProcs(aS, procs); err != nil {
		return p, err
	}
	if p.B, err = parseProcs(bS, procs); err != nil {
		return p, err
	}
	return p, nil
}

func parseProcs(s string, procs int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("process group %q: %w", s, err)
		}
		if n < 0 || n >= procs {
			return nil, fmt.Errorf("process group %q: process %d out of range [0,%d)", s, n, procs)
		}
		out = append(out, n)
	}
	return out, nil
}

// usage reports a flag error and exits with the conventional usage
// status, instead of surfacing it later as a panic deep in the run.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsmrun: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	os.Exit(1)
}
