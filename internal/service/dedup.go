package service

import (
	"sync"

	"repro/internal/protocol"
)

// Exactly-once write admission. A retried write (same session ID, same
// per-session op sequence) must apply once even when the first attempt
// is still in flight when the retry arrives — the connection died after
// the request reached the server, the write went through the pump, and
// the client replayed it on a fresh connection before the first
// attempt's response was computed. The table therefore works on claims,
// not just results: the first arrival of an (SID, OpSeq) claims the
// entry and executes; any later arrival waits for the claim to resolve
// and either returns the cached response (the write applied) or — when
// the first attempt failed without applying — claims the entry itself
// and executes for real.
//
// The window is bounded two ways: per session, completed entries below
// a sliding op-sequence floor are evicted (the floor trails the newest
// completed op by the configured window, which far exceeds the client's
// pipeline depth, so a live retry can never be below it); across
// sessions, an LRU cap evicts whole idle sessions.

// dedupEntry is one claimed (SID, OpSeq): done closes when the claim
// resolves, and ok reports whether resp is a cached applied write.
type dedupEntry struct {
	done chan struct{}
	resp protocol.Response
	ok   bool
}

// sessionDedup is one session's window.
type sessionDedup struct {
	entries  map[uint64]*dedupEntry
	floor    uint64 // OpSeqs below this are evicted; retrying them is a protocol error
	stamp    uint64 // LRU clock value of the last touch
	pendingN int    // unresolved claims; a session with any is not evictable
}

// dedupTable is the server-wide dedup state.
type dedupTable struct {
	window      uint64
	maxSessions int

	mu       sync.Mutex
	clock    uint64
	sessions map[uint64]*sessionDedup
}

func newDedupTable(window, maxSessions int) *dedupTable {
	return &dedupTable{
		window:      uint64(window),
		maxSessions: maxSessions,
		sessions:    map[uint64]*sessionDedup{},
	}
}

// dedupClaim is the outcome of one claim attempt. Exactly one of the
// fields is meaningful: tooOld, cached (with resp), wait, or owned
// (with entry).
type dedupClaim struct {
	tooOld bool
	cached bool
	resp   protocol.Response
	wait   <-chan struct{} // resolve in flight: wait, then claim again
	owned  bool            // caller executes and must call complete
}

// claim resolves one arrival of (sid, opSeq); see dedupClaim.
func (t *dedupTable) claim(sid, opSeq uint64) dedupClaim {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.sessions[sid]
	if s == nil {
		t.evictLocked()
		s = &sessionDedup{entries: map[uint64]*dedupEntry{}}
		t.sessions[sid] = s
	}
	t.clock++
	s.stamp = t.clock
	if opSeq < s.floor {
		return dedupClaim{tooOld: true}
	}
	if e := s.entries[opSeq]; e != nil {
		select {
		case <-e.done:
			return dedupClaim{cached: true, resp: e.resp}
		default:
			return dedupClaim{wait: e.done}
		}
	}
	s.entries[opSeq] = &dedupEntry{done: make(chan struct{})}
	s.pendingN++
	return dedupClaim{owned: true}
}

// complete resolves an owned claim. An applied write (StatusOK) is
// cached for the window; anything else releases the claim so a retry
// can execute for real — the write did not reach the store.
func (t *dedupTable) complete(sid, opSeq uint64, resp protocol.Response) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.sessions[sid]
	if s == nil {
		return // session evicted while we executed; nothing to cache
	}
	e := s.entries[opSeq]
	if e == nil {
		return
	}
	s.pendingN--
	if resp.Status == protocol.StatusOK {
		e.resp, e.ok = resp, true
		if opSeq >= t.window && opSeq-t.window+1 > s.floor {
			s.floor = opSeq - t.window + 1
			for seq := range s.entries {
				if seq < s.floor {
					delete(s.entries, seq)
				}
			}
		}
	} else {
		delete(s.entries, opSeq)
	}
	close(e.done)
}

// evictLocked makes room for one more session, dropping the
// least-recently-touched. A session with an unresolved claim is never
// evicted — dropping it would strand retries waiting on its done
// channels — so the table can transiently exceed the cap while claims
// resolve (each is bounded by the server's WaitTimeout). Caller holds
// t.mu.
func (t *dedupTable) evictLocked() {
	for len(t.sessions) >= t.maxSessions {
		victim, found := uint64(0), false
		oldest := uint64(1<<64 - 1)
		for sid, s := range t.sessions {
			if s.pendingN == 0 && s.stamp <= oldest {
				victim, oldest, found = sid, s.stamp, true
			}
		}
		if !found {
			return
		}
		delete(t.sessions, victim)
	}
}
