package transport

import (
	"fmt"
	"sync"
	"time"
)

// HeartbeatConfig parameterizes the failure detector.
type HeartbeatConfig struct {
	// Procs is the number of processes (must match the transport).
	Procs int
	// Interval is the heartbeat period: every Interval each live
	// process probes every peer.
	Interval time.Duration
	// SuspectAfter is the silence threshold: an observer that has not
	// heard a peer for longer suspects it. 0 defaults to 4×Interval —
	// loose enough that jitter and a lost probe or two cause no false
	// suspicion, tight enough to unblock token circulation quickly.
	SuspectAfter time.Duration
}

// Validate reports configuration errors.
func (c HeartbeatConfig) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("transport: HeartbeatConfig.Procs = %d", c.Procs)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("transport: HeartbeatConfig.Interval = %v", c.Interval)
	}
	if c.SuspectAfter < 0 {
		return fmt.Errorf("transport: HeartbeatConfig.SuspectAfter = %v", c.SuspectAfter)
	}
	return nil
}

// Detector is an eventually-perfect-style heartbeat failure detector
// over a Transport: every live process periodically probes every peer,
// and per-observer silence beyond SuspectAfter raises a suspicion
// (EvSuspect), cleared when the peer is heard again (EvAlive). The
// detector piggybacks on the normal transport, so everything that
// delays or drops frames — jitter, chaos loss, partitions — feeds
// suspicion, which is the point: suspicion is the cluster's signal to
// route around a peer (token skipping, quiesce accounting) instead of
// hanging on it.
//
// The engine tells the detector about orchestrated crash-stops via
// SetDown so a down process neither probes nor accuses anyone.
type Detector struct {
	cfg HeartbeatConfig
	tr  Transport
	obs Observer

	mu        sync.Mutex
	down      []bool        // ground truth from the engine (crash-stopped)
	lastHeard [][]time.Time // lastHeard[observer][peer]
	suspected [][]bool      // suspected[observer][peer]
	closed    bool

	stop chan struct{}
	done chan struct{}
}

// NewDetector builds a detector over tr. obs may be nil. Call Start to
// begin probing.
func NewDetector(tr Transport, cfg HeartbeatConfig, obs Observer) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 4 * cfg.Interval
	}
	d := &Detector{
		cfg:       cfg,
		tr:        tr,
		obs:       obs,
		down:      make([]bool, cfg.Procs),
		lastHeard: make([][]time.Time, cfg.Procs),
		suspected: make([][]bool, cfg.Procs),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	now := time.Now()
	for i := range d.lastHeard {
		d.lastHeard[i] = make([]time.Time, cfg.Procs)
		d.suspected[i] = make([]bool, cfg.Procs)
		for j := range d.lastHeard[i] {
			d.lastHeard[i][j] = now // grace period: nobody starts suspected
		}
	}
	return d, nil
}

// Start launches the probe/check loop.
func (d *Detector) Start() { go d.loop() }

func (d *Detector) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
		}
		d.mu.Lock()
		live := make([]bool, d.cfg.Procs)
		for i := range live {
			live[i] = !d.down[i]
		}
		d.mu.Unlock()
		// Probe outside the lock: a slow (FIFO, chaos-held) Send must
		// never stall Heard callbacks from delivery goroutines.
		for i := 0; i < d.cfg.Procs; i++ {
			if !live[i] {
				continue
			}
			for j := 0; j < d.cfg.Procs; j++ {
				if j != i {
					d.tr.Send(Message{From: i, To: j, Heartbeat: true})
				}
			}
		}
		d.check()
	}
}

// check raises suspicions for peers silent past the threshold.
func (d *Detector) check() {
	now := time.Now()
	var events []NetEvent
	d.mu.Lock()
	for obs := 0; obs < d.cfg.Procs; obs++ {
		if d.down[obs] {
			continue
		}
		for peer := 0; peer < d.cfg.Procs; peer++ {
			if peer == obs || d.suspected[obs][peer] {
				continue
			}
			if now.Sub(d.lastHeard[obs][peer]) > d.cfg.SuspectAfter {
				d.suspected[obs][peer] = true
				events = append(events, NetEvent{Kind: EvSuspect, From: peer, To: obs})
			}
		}
	}
	d.mu.Unlock()
	for _, e := range events {
		d.emit(e)
	}
}

// Heard records that observer received a heartbeat from peer, clearing
// any suspicion. Engines call it from their delivery handlers.
func (d *Detector) Heard(observer, peer int) {
	d.mu.Lock()
	d.lastHeard[observer][peer] = time.Now()
	wasSuspected := d.suspected[observer][peer]
	d.suspected[observer][peer] = false
	d.mu.Unlock()
	if wasSuspected {
		d.emit(NetEvent{Kind: EvAlive, From: peer, To: observer})
	}
}

// SetDown tells the detector process p crash-stopped (true) or
// restarted (false). A down process stops probing and accusing; a
// restarted one gets a fresh grace period toward every peer.
func (d *Detector) SetDown(p int, down bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down[p] = down
	if !down {
		now := time.Now()
		for j := range d.lastHeard[p] {
			d.lastHeard[p][j] = now
			d.suspected[p][j] = false
		}
	}
}

// Up reports whether p is neither crash-stopped nor suspected by any
// live observer — the predicate token circulation uses to pick a
// holder that will actually answer.
func (d *Detector) Up(p int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down[p] {
		return false
	}
	for obs := 0; obs < d.cfg.Procs; obs++ {
		if obs != p && !d.down[obs] && d.suspected[obs][p] {
			return false
		}
	}
	return true
}

// Suspects returns the peers currently suspected by observer, for
// tests and introspection.
func (d *Detector) Suspects(observer int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for p, s := range d.suspected[observer] {
		if s {
			out = append(out, p)
		}
	}
	return out
}

// SuspectedPairs returns the number of (observer, peer) pairs where a
// live observer currently suspects the peer — the scrape-time gauge
// the observability layer exposes as dsm_suspected_pairs (0 in a
// healthy cluster).
func (d *Detector) SuspectedPairs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for obs := 0; obs < d.cfg.Procs; obs++ {
		if d.down[obs] {
			continue
		}
		for peer, s := range d.suspected[obs] {
			if s && peer != obs {
				n++
			}
		}
	}
	return n
}

// Close stops probing. It does not close the underlying transport.
func (d *Detector) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stop)
	<-d.done
	return nil
}

func (d *Detector) emit(e NetEvent) {
	if d.obs != nil {
		d.obs(e)
	}
}
