// Comparison: the paper's headline result, reproduced end to end.
//
// It replays the worked history Ĥ1 (Example 1) with the exact message
// arrival order of Figures 3 and 6 under both ANBKH and OptP on the
// deterministic simulator, prints the per-process event sequences, and
// then sweeps network jitter on the adversarial private-variable
// workload to show the delay gap at scale.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"repro/internal/checker"
	"repro/internal/paperrepro"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fmt.Println("=== The paper's Figure 3 vs Figure 6 run (history Ĥ1) ===")
	fig3, err := paperrepro.Fig3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3)
	fig6, err := paperrepro.Fig6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig6)

	fmt.Println("=== Delay gap at scale: adversarial workload, FIFO links ===")
	fmt.Printf("%-8s %-18s %8s %13s\n", "jitter", "protocol", "delays", "unnecessary")
	for _, jitter := range []int64{100, 300, 900} {
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
			totalDelays, totalUnnecessary := 0, 0
			for seed := uint64(1); seed <= 5; seed++ {
				w := workload.NewFalseCausality(5, seed)
				scripts, err := w.Scripts()
				if err != nil {
					log.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: w.Procs, Vars: w.Vars(), Protocol: kind,
					Latency: sim.NewUniformLatency(1, jitter, seed*31),
					FIFO:    true,
				}, scripts)
				if err != nil {
					log.Fatal(err)
				}
				rep, err := checker.Audit(res.Log)
				if err != nil {
					log.Fatal(err)
				}
				totalDelays += len(rep.Delays)
				totalUnnecessary += rep.UnnecessaryDelays
			}
			fmt.Printf("%-8d %-18s %8d %13d\n", jitter, kind.String(), totalDelays, totalUnnecessary)
		}
	}
	fmt.Println("\nOptP delays a message only when a write in its →co past is missing;")
	fmt.Println("every ANBKH surplus above it is false causality (Definition 5).")
}
