package client_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/vclock"
)

func startServer(t *testing.T, ccfg core.Config, scfg service.Config) *service.Server {
	t.Helper()
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	scfg.Cluster = cl
	srv, err := service.New(scfg)
	if err != nil {
		cl.Close()
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Close()
	})
	return srv
}

func TestDoAfterCloseFails(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClosed", err)
	}
}

// Cancelling a blocked request frees the caller immediately; the
// connection survives and the abandoned response is discarded when it
// eventually arrives.
func TestContextCancellationAbandonsCall(t *testing.T) {
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 400 * time.Millisecond})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: 0, Var: 0, Token: vclock.VC{1 << 20, 0},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled Do = %v, want DeadlineExceeded", err)
	}
	// The server answers the abandoned tag ~350ms later; the client must
	// shrug it off and keep serving this connection.
	time.Sleep(600 * time.Millisecond)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping after abandoned call: %v", err)
	}
}

// A server-side connection drop (here: provoked by a malformed frame
// from a second, raw connection — the client itself never sends one)
// must fail in-flight and future calls with ErrClosed, not hang them.
func TestServerDropFailsPending(t *testing.T) {
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 10 * time.Second})
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer raw.Close()
	// A frame whose payload is garbage: the server drops the connection.
	frame := binary.AppendUvarint(nil, 4)
	frame = append(frame, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := raw.Write(frame); err != nil {
		t.Fatalf("Write: %v", err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after malformed frame = %v, want EOF (connection dropped)", err)
	}
}

func TestSessionTokenGrowsMonotonically(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 3, Variables: 2}, service.Config{})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.Session()
	if tok := s.Token(); tok != nil {
		t.Fatalf("fresh session token = %v, want nil", tok)
	}
	var prev vclock.VC
	for i := int64(1); i <= 5; i++ {
		if err := s.Write(ctx, 0, i); err != nil {
			t.Fatalf("Write: %v", err)
		}
		tok := s.Token()
		if len(tok) != 3 {
			t.Fatalf("token %v, want dimension 3", tok)
		}
		if prev != nil && !tok.Dominates(prev) {
			t.Fatalf("token went backwards: %v after %v", tok, prev)
		}
		prev = tok
	}
	// Resume folds a foreign past in; the token only grows.
	other := vclock.VC{0, 99, 0}
	s.Resume(other)
	tok := s.Token()
	if !tok.Dominates(other) || !tok.Dominates(prev) {
		t.Fatalf("resumed token %v must dominate both %v and %v", tok, other, prev)
	}
}

// The no-token session really sends no token — its whole point is to
// be detectably broken.
func TestNoTokenSessionStaysTokenless(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.NoTokenSession()
	for i := int64(1); i <= 3; i++ {
		if err := s.Write(ctx, 0, i); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if _, err := s.Read(ctx, 0); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if tok := s.Token(); len(tok) != 0 {
		t.Fatalf("no-token session accumulated %v", tok)
	}
}

// ---------------------------------------------------------------------------
// Fault tolerance: reconnect, replay, exactly-once, retryable statuses.
// ---------------------------------------------------------------------------

// chaosProxy is a kill-able TCP relay between client and server so tests
// can sever the stream at a chosen moment without touching either end.
type chaosProxy struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func newProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &chaosProxy{t: t, ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, c, b)
			p.mu.Unlock()
			go func() { io.Copy(b, c); b.Close(); c.Close() }()
			go func() { io.Copy(c, b); b.Close(); c.Close() }()
		}
	}()
	t.Cleanup(p.close)
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

// killAll severs every live relayed connection, both halves.
func (p *chaosProxy) killAll() {
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

func (p *chaosProxy) close() {
	p.ln.Close()
	p.killAll()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Severing the connection mid-stream must be invisible to the caller:
// the client reconnects, replays, and the server's exactly-once window
// ensures every write applied exactly once — the session token's
// component for the pinned replica counts applied writes, so token[0]
// equal to the number of issued writes proves no loss AND no duplicate.
func TestReconnectReplaysAndDedupsWrites(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	p := newProxy(t, srv.Addr())
	c, err := client.DialConfig(client.Config{Addr: p.addr()})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.Session().Use(0)
	const n = 40
	for i := 1; i <= n; i++ {
		if i%10 == 0 {
			p.killAll()
		}
		if err := s.Write(ctx, 0, int64(i)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	v, err := s.Read(ctx, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != n {
		t.Fatalf("final value = %d, want %d", v, n)
	}
	tok := s.Token()
	if tok[0] != n || tok[1] != 0 {
		t.Fatalf("token %v: replica 0 applied %d writes, want exactly %d (duplicate or lost write)", tok, tok[0], n)
	}
}

// A session token no live replica can reach yields StatusRetry; the
// client must retry with backoff under the per-call deadline and then
// surface the typed retryable error — never ErrUnavailable, never a
// hang.
func TestRetryExhaustionReturnsTypedError(t *testing.T) {
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 50 * time.Millisecond})
	c, err := client.DialConfig(client.Config{Addr: srv.Addr(), CallTimeout: 400 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Do(context.Background(), protocol.Request{
		Kind: protocol.ReqRead, Proc: -1, Var: 0, Token: vclock.VC{1 << 20, 0},
	})
	if !errors.Is(err, client.ErrRetryable) {
		t.Fatalf("unreachable-token read = %v, want ErrRetryable", err)
	}
	if !client.Retryable(err) {
		t.Fatalf("Retryable(%v) = false, want true", err)
	}
	if el := time.Since(start); el < 300*time.Millisecond || el > 5*time.Second {
		t.Fatalf("call resolved in %v, want ~CallTimeout (400ms)", el)
	}
}

// metricValue scrapes one metric's first sample from the registry's
// Prometheus rendering (labels don't matter to these tests).
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	return 0
}

// With MaxInflight saturated by a parked read, further requests are
// fast-rejected with StatusOverloaded; a client that exhausts its
// deadline backing off reports ErrOverloaded.
func TestOverloadSheddingSurfacesErrOverloaded(t *testing.T) {
	reg := obs.NewRegistry()
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 10 * time.Second, MaxInflight: 1, Metrics: reg})
	blocker, err := client.DialConfig(client.Config{Addr: srv.Addr(), CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer blocker.Close()
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		blocker.Do(bctx, protocol.Request{
			Kind: protocol.ReqRead, Proc: 0, Var: 0, Token: vclock.VC{1 << 20, 0},
		})
	}()
	waitFor(t, "blocker to park in waitFrontier", func() bool {
		return metricValue(t, reg, "dsm_svc_requests_inflight") >= 1
	})
	c, err := client.DialConfig(client.Config{Addr: srv.Addr(), CallTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("ping against saturated server = %v, want ErrOverloaded", err)
	}
	if metricValue(t, reg, "dsm_svc_shed_total") == 0 {
		t.Fatal("dsm_svc_shed_total never incremented")
	}
	bcancel()
	<-done
}

// S3: cancelling calls mid-pipeline drains the pending map, leaves the
// connection usable, and leaks no goroutines.
func TestCancellationMidPipelineDrainsPending(t *testing.T) {
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 2 * time.Second})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const k = 16
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(ctx, protocol.Request{
				Kind: protocol.ReqRead, Proc: 0, Var: 0, Token: vclock.VC{1 << 20, 0},
			})
		}()
	}
	waitFor(t, "all calls in flight", func() bool { return c.Pending() == k })
	cancel()
	wg.Wait()
	if n := c.Pending(); n != 0 {
		t.Fatalf("%d calls still pending after cancellation, want 0", n)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping after mass cancellation: %v", err)
	}
	// The server's parked waiters unwind by WaitTimeout; after that the
	// goroutine count must return to its pre-pipeline baseline.
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// DisableRetry restores fail-fast semantics: a dead connection fails
// calls with ErrClosed instead of reconnecting.
func TestDisableRetryFailsFastOnConnLoss(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	p := newProxy(t, srv.Addr())
	c, err := client.DialConfig(client.Config{Addr: p.addr(), DisableRetry: true})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	p.killAll()
	waitFor(t, "fail-fast ErrClosed", func() bool {
		return errors.Is(c.Ping(context.Background()), client.ErrClosed)
	})
}

// When the address stays dead past ReconnectWindow the client fails
// terminally: pending and future calls get ErrClosed, nothing hangs.
func TestReconnectWindowExhaustionIsTerminal(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	p := newProxy(t, srv.Addr())
	c, err := client.DialConfig(client.Config{
		Addr:            p.addr(),
		ReconnectWindow: 200 * time.Millisecond,
		CallTimeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	p.close() // no more accepts: redials get connection refused
	start := time.Now()
	err = c.Ping(context.Background())
	if !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping after dead address = %v, want ErrClosed", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("terminal failure took %v, want ~ReconnectWindow", el)
	}
}
