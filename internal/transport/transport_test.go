package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/protocol"
)

func upd(p, seq int) protocol.Update {
	return protocol.Update{ID: history.WriteID{Proc: p, Seq: seq}}
}

func TestValidate(t *testing.T) {
	if err := (Config{Procs: 0}).Validate(); err == nil {
		t.Error("accepted 0 procs")
	}
	if err := (Config{Procs: 2, MinDelay: 5, MaxDelay: 1}).Validate(); err == nil {
		t.Error("accepted inverted delays")
	}
	if _, err := New(Config{Procs: 0}); err == nil {
		t.Error("New accepted bad config")
	}
}

func TestDeliveryExactlyOnce(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		n, err := New(Config{Procs: 3, FIFO: fifo})
		if err != nil {
			t.Fatal(err)
		}
		var got [3]int64
		for p := 0; p < 3; p++ {
			p := p
			n.Register(p, func(m Message) { atomic.AddInt64(&got[p], 1) })
		}
		const msgs = 200
		for i := 0; i < msgs; i++ {
			n.Send(Message{From: 0, To: 1, Update: upd(0, i+1)})
			n.Send(Message{From: 2, To: 1, Update: upd(2, i+1)})
			n.Send(Message{From: 1, To: 2, Update: upd(1, i+1)})
		}
		n.Flush()
		if atomic.LoadInt64(&got[1]) != 2*msgs || atomic.LoadInt64(&got[2]) != msgs || atomic.LoadInt64(&got[0]) != 0 {
			t.Fatalf("fifo=%v: counts = %v", fifo, got)
		}
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFIFOPreservesLinkOrder(t *testing.T) {
	n, err := New(Config{Procs: 2, FIFO: true, MinDelay: 0, MaxDelay: 200 * time.Microsecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []int
	n.Register(0, func(Message) {})
	n.Register(1, func(m Message) {
		mu.Lock()
		seqs = append(seqs, m.Update.ID.Seq)
		mu.Unlock()
	})
	const msgs = 100
	for i := 1; i <= msgs; i++ {
		n.Send(Message{From: 0, To: 1, Update: upd(0, i)})
	}
	n.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != msgs {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("reordered at %d: %v", i, seqs[:i+1])
		}
	}
	n.Close()
}

func TestReorderModeReorders(t *testing.T) {
	n, err := New(Config{Procs: 2, FIFO: false, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []int
	n.Register(0, func(Message) {})
	n.Register(1, func(m Message) {
		mu.Lock()
		seqs = append(seqs, m.Update.ID.Seq)
		mu.Unlock()
	})
	for i := 1; i <= 100; i++ {
		n.Send(Message{From: 0, To: 1, Update: upd(0, i)})
	}
	n.Flush()
	mu.Lock()
	defer mu.Unlock()
	inOrder := true
	for i, s := range seqs {
		if s != i+1 {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("100 jittered messages arrived perfectly in order — reordering broken")
	}
	n.Close()
}

func TestSendAfterCloseDropped(t *testing.T) {
	n, _ := New(Config{Procs: 2})
	delivered := int64(0)
	n.Register(0, func(Message) {})
	n.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })
	n.Close()
	n.Send(Message{From: 0, To: 1, Update: upd(0, 1)})
	if atomic.LoadInt64(&delivered) != 0 {
		t.Fatal("delivered after close")
	}
	if err := n.Close(); err != ErrClosed {
		t.Fatalf("second close = %v", err)
	}
}

func TestBadRoutePanics(t *testing.T) {
	n, _ := New(Config{Procs: 2})
	defer n.Close()
	for _, m := range []Message{
		{From: 0, To: 0},
		{From: 0, To: 5},
		{From: -1, To: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("route %d->%d accepted", m.From, m.To)
				}
			}()
			n.Send(m)
		}()
	}
}

func TestRegisterOutOfRangePanics(t *testing.T) {
	n, _ := New(Config{Procs: 1})
	defer n.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Register(5, func(Message) {})
}

func TestBroadcastHelper(t *testing.T) {
	n, _ := New(Config{Procs: 4})
	var got [4]int64
	for p := 0; p < 4; p++ {
		p := p
		n.Register(p, func(Message) { atomic.AddInt64(&got[p], 1) })
	}
	Broadcast(n, 4, 2, upd(2, 1))
	n.Flush()
	for p, c := range got {
		want := int64(1)
		if p == 2 {
			want = 0
		}
		if atomic.LoadInt64(&got[p]) != want {
			t.Fatalf("p%d got %d", p+1, c)
		}
	}
	n.Close()
}

// TestConcurrentSendFlushClose is the regression test for the
// Send/Close race: a message used to be acceptable after `closed`
// flipped but before the links closed, panicking on a closed channel
// (FIFO) or leaking an inflight.Add that hung Flush. Send now holds
// the close lock from the closed check through enqueue.
func TestConcurrentSendFlushClose(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		for round := 0; round < 20; round++ {
			n, err := New(Config{Procs: 3, FIFO: fifo, Seed: int64(round)})
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 3; p++ {
				n.Register(p, func(Message) {})
			}
			var wg sync.WaitGroup
			start := make(chan struct{})
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 1; i <= 100; i++ {
						n.Send(Message{From: g % 3, To: (g + 1) % 3, Update: upd(g%3, i)})
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				n.Flush()
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				n.Close()
			}()
			close(start)
			wg.Wait()
			// Flush after Close must return promptly (no leaked inflight).
			done := make(chan struct{})
			go func() { n.Flush(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("fifo=%v round %d: Flush hung after Close", fifo, round)
			}
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	n, _ := New(Config{Procs: 4, FIFO: true, MaxDelay: 50 * time.Microsecond, Seed: 3})
	var got int64
	for p := 0; p < 4; p++ {
		n.Register(p, func(Message) { atomic.AddInt64(&got, 1) })
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				Broadcast(n, 4, p, upd(p, i))
			}
		}()
	}
	wg.Wait()
	n.Flush()
	if atomic.LoadInt64(&got) != 4*50*3 {
		t.Fatalf("delivered %d, want %d", got, 4*50*3)
	}
	n.Close()
}

// TestMulticastDestinations: SendTo delivers exactly to the requested
// set (minus the sender) in both FIFO and reorder modes, and the
// generic Multicast helper falls back to per-destination sends for
// transports without the batched path.
func TestMulticastDestinations(t *testing.T) {
	for _, fifo := range []bool{true, false} {
		n, err := New(Config{Procs: 4, FIFO: fifo})
		if err != nil {
			t.Fatal(err)
		}
		var got [4]atomic.Int64
		for p := 0; p < 4; p++ {
			p := p
			n.Register(p, func(m Message) { got[p].Add(1) })
		}
		Multicast(n, 1, []int{0, 1, 3}, protocol.Update{Var: 0, Val: 7})
		n.Flush()
		want := [4]int64{1, 0, 0, 1}
		for p := range got {
			if g := got[p].Load(); g != want[p] {
				t.Errorf("fifo=%v: p%d received %d messages, want %d", fifo, p+1, g, want[p])
			}
		}
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
		// After close, SendTo must be a silent no-op.
		n.SendTo(1, []int{0, 2}, protocol.Update{})
	}
}
