package sim

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/protocol"
)

// Latency models message transmission delay. Implementations must be
// deterministic given their construction parameters (randomized models
// own a seeded RNG). Delays are virtual nanoseconds and must be ≥ 0;
// channels are reliable, so a delay is always finite.
type Latency interface {
	// Delay returns the transit time of update u from process `from` to
	// process `to`.
	Delay(from, to int, u protocol.Update) int64
}

// ConstantLatency delivers every message after a fixed delay (a
// synchronous-looking network: no reordering, hence no write delays for
// any safe protocol).
type ConstantLatency int64

// Delay implements Latency.
func (c ConstantLatency) Delay(from, to int, u protocol.Update) int64 { return int64(c) }

// UniformLatency draws each delay uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max int64
	rng      *RNG
}

// NewUniformLatency returns a uniform model over [min, max] seeded by
// seed. It panics on an empty interval.
func NewUniformLatency(min, max int64, seed uint64) *UniformLatency {
	if max < min || min < 0 {
		panic(fmt.Sprintf("sim: invalid uniform latency [%d, %d]", min, max))
	}
	return &UniformLatency{Min: min, Max: max, rng: NewRNG(seed)}
}

// Delay implements Latency.
func (u *UniformLatency) Delay(from, to int, up protocol.Update) int64 {
	if u.Max == u.Min {
		return u.Min
	}
	return u.Min + u.rng.Int63n(u.Max-u.Min+1)
}

// ExpLatency draws Base plus an exponential jitter with the given mean —
// the long-tail model used by the jitter sweeps (experiment E1).
type ExpLatency struct {
	Base int64
	Mean float64
	rng  *RNG
}

// NewExpLatency returns an exponential-jitter model.
func NewExpLatency(base int64, mean float64, seed uint64) *ExpLatency {
	if base < 0 || mean < 0 {
		panic(fmt.Sprintf("sim: invalid exp latency base=%d mean=%f", base, mean))
	}
	return &ExpLatency{Base: base, Mean: mean, rng: NewRNG(seed)}
}

// Delay implements Latency.
func (e *ExpLatency) Delay(from, to int, u protocol.Update) int64 {
	return e.Base + int64(e.rng.Exp(e.Mean))
}

// MatrixLatency assigns a fixed base delay per (from, to) pair plus an
// optional uniform jitter — an asymmetric-topology model (e.g. two
// sites with a slow inter-site link).
type MatrixLatency struct {
	Base   [][]int64
	Jitter int64
	rng    *RNG
}

// NewMatrixLatency returns a matrix model; base must be square.
func NewMatrixLatency(base [][]int64, jitter int64, seed uint64) *MatrixLatency {
	for _, row := range base {
		if len(row) != len(base) {
			panic("sim: latency matrix not square")
		}
	}
	return &MatrixLatency{Base: base, Jitter: jitter, rng: NewRNG(seed)}
}

// Delay implements Latency.
func (m *MatrixLatency) Delay(from, to int, u protocol.Update) int64 {
	d := m.Base[from][to]
	if m.Jitter > 0 {
		d += m.rng.Int63n(m.Jitter + 1)
	}
	return d
}

// ScriptedLatency gives exact control over individual message arrivals:
// overrides are keyed by (write, destination) and fall back to Default.
// It is how the paper's Figure 3 and Figure 6 runs pin their arrival
// orders.
type ScriptedLatency struct {
	Default  int64
	override map[scriptedKey]int64
}

type scriptedKey struct {
	w  history.WriteID
	to int
}

// NewScriptedLatency returns a scripted model with the given fallback.
func NewScriptedLatency(def int64) *ScriptedLatency {
	return &ScriptedLatency{Default: def, override: make(map[scriptedKey]int64)}
}

// Set pins the transit time of write w's update toward process to.
func (s *ScriptedLatency) Set(w history.WriteID, to int, d int64) *ScriptedLatency {
	s.override[scriptedKey{w, to}] = d
	return s
}

// Delay implements Latency.
func (s *ScriptedLatency) Delay(from, to int, u protocol.Update) int64 {
	if d, ok := s.override[scriptedKey{u.ID, to}]; ok {
		return d
	}
	return s.Default
}
