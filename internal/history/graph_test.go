package history

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestH1WriteGraph reproduces Figure 7: the write causality graph of Ĥ1.
//
// Note: the paper's prose for Figure 7 says "w1(x1)c is a w3(x2)d's
// immediate predecessor", which contradicts its own Example 1
// (w1(x1)c ‖co w3(x2)d). We follow the definitions: the edge set is
// exactly {wa→wc, wa→wb, wb→wd}. The discrepancy is recorded in
// EXPERIMENTS.md.
func TestH1WriteGraph(t *testing.T) {
	c, _, _ := mustCausality(t)
	g := c.WriteGraph()
	want := []string{
		"w1#1 -> w1#2", // w1(x1)a -> w1(x1)c
		"w1#1 -> w2#1", // w1(x1)a -> w2(x2)b
		"w2#1 -> w3#1", // w2(x2)b -> w3(x2)d
	}
	if got := g.EdgeList(); !reflect.DeepEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestImmediatePredecessors(t *testing.T) {
	c, _, _ := mustCausality(t)
	_, ids := H1()
	g := c.WriteGraph()
	preds := g.ImmediatePredecessors(ids[3]) // wd
	if len(preds) != 1 || preds[0] != ids[2] {
		t.Fatalf("preds(wd) = %v, want [wb]", preds)
	}
	if got := g.ImmediatePredecessors(ids[0]); got != nil {
		t.Fatalf("preds(wa) = %v, want none", got)
	}
	if got := g.ImmediatePredecessors(WriteID{9, 9}); got != nil {
		t.Fatalf("preds(unknown) = %v", got)
	}
}

func TestVertexOf(t *testing.T) {
	c, _, _ := mustCausality(t)
	_, ids := H1()
	g := c.WriteGraph()
	for _, id := range ids {
		v := g.VertexOf(id)
		if v < 0 || g.Vertices[v] != id {
			t.Fatalf("VertexOf(%v) = %d", id, v)
		}
	}
	if g.VertexOf(WriteID{9, 9}) != -1 {
		t.Fatal("unknown vertex should be -1")
	}
}

func TestDOT(t *testing.T) {
	c, h, _ := mustCausality(t)
	dot := c.WriteGraph().DOT(h)
	for _, frag := range []string{"digraph", "w1(x1)1", "w3(x2)4", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

// Property: on random histories, the write graph's transitive closure
// over writes equals →co restricted to writes, and each edge is
// irredundant (removing it changes reachability — i.e. the graph is the
// transitive reduction).
func TestWriteGraphIsTransitiveReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		h := randomHistory(rng, 3, 2, 20)
		c, err := h.Causality()
		if err != nil {
			t.Fatal(err)
		}
		g := c.WriteGraph()
		nv := len(g.Vertices)
		// Closure of the graph via Floyd–Warshall-style DP.
		reach := make([][]bool, nv)
		for i := range reach {
			reach[i] = make([]bool, nv)
			for _, j := range g.Edges[i] {
				reach[i][j] = true
			}
		}
		for k := 0; k < nv; k++ {
			for i := 0; i < nv; i++ {
				if reach[i][k] {
					for j := 0; j < nv; j++ {
						if reach[k][j] {
							reach[i][j] = true
						}
					}
				}
			}
		}
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				want := c.WriteBefore(g.Vertices[i], g.Vertices[j])
				if reach[i][j] != want {
					t.Fatalf("trial %d: closure(%v,%v) = %v, →co = %v",
						trial, g.Vertices[i], g.Vertices[j], reach[i][j], want)
				}
			}
		}
		// Irredundancy: no edge i→j with an intermediate write path.
		for i := 0; i < nv; i++ {
			for _, j := range g.Edges[i] {
				for k := 0; k < nv; k++ {
					if k != i && k != j && reach[i][k] && reach[k][j] {
						t.Fatalf("trial %d: redundant edge %v -> %v via %v",
							trial, g.Vertices[i], g.Vertices[j], g.Vertices[k])
					}
				}
			}
		}
	}
}

// Each write has at most n immediate predecessors (one per process),
// as observed in Section 4.3.
func TestAtMostNImmediatePredecessors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		h := randomHistory(rng, n, 2, 30)
		c, err := h.Causality()
		if err != nil {
			t.Fatal(err)
		}
		g := c.WriteGraph()
		for _, id := range g.Vertices {
			if preds := g.ImmediatePredecessors(id); len(preds) > n {
				t.Fatalf("trial %d: %v has %d immediate predecessors (n=%d)", trial, id, len(preds), n)
			}
		}
	}
}
