// Command dsmrun drives a live causal-memory cluster from the command
// line: it runs a seeded random workload over real goroutines and a
// jittered transport, waits for quiescence, audits the trace against
// the paper's correctness and optimality properties, and prints the
// scorecard. With -trace it dumps the full event log (CSV or JSON).
//
// Usage:
//
//	dsmrun -protocol OptP -procs 4 -vars 4 -ops 100 -jitter 2ms
//	dsmrun -protocol ANBKH -trace csv > run.csv
//	dsmrun -loss 0.2 -dup 0.1                      # chaos stack
//	dsmrun -partition 5ms-25ms:0,1/2,3             # timed split-brain
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	proto := flag.String("protocol", "OptP", "protocol: OptP, ANBKH, WS-recv, WS-send, OptP-noreadmerge")
	procs := flag.Int("procs", 4, "number of processes")
	vars := flag.Int("vars", 4, "number of shared variables")
	ops := flag.Int("ops", 100, "operations per process")
	writeRatio := flag.Float64("write-ratio", 0.6, "probability an op is a write")
	jitter := flag.Duration("jitter", time.Millisecond, "max artificial message delay")
	fifo := flag.Bool("fifo", false, "preserve per-link FIFO order")
	seed := flag.Int64("seed", 1, "workload and transport seed")
	traceOut := flag.String("trace", "", "dump the event trace: csv, json, or diagram")
	useTCP := flag.Bool("tcp", false, "run over real loopback TCP sockets instead of channels")
	loss := flag.Float64("loss", 0, "chaos: message loss probability [0,1)")
	dup := flag.Float64("dup", 0, "chaos: message duplication probability [0,1]")
	reorder := flag.Float64("reorder", 0, "chaos: reorder-burst probability [0,1]")
	reorderDelay := flag.Duration("reorder-delay", 0, "chaos: hold-back for burst-delayed messages (default 2ms)")
	partition := flag.String("partition", "", "chaos: timed link cut, e.g. 5ms-25ms:0,1/2,3")
	rto := flag.Duration("rto", 0, "reliability: initial retransmit timeout (default 2×jitter+1ms)")
	backoffMax := flag.Duration("backoff-max", 0, "reliability: retransmission backoff cap (default 20×rto)")
	flag.Parse()

	kind, err := protocol.ParseKind(*proto)
	if err != nil {
		fatal(err)
	}
	chaos := transport.ChaosConfig{
		LossRate: *loss, DupRate: *dup,
		ReorderRate: *reorder, ReorderDelay: *reorderDelay,
		Seed: *seed,
	}
	if *partition != "" {
		p, err := parsePartition(*partition)
		if err != nil {
			fatal(err)
		}
		chaos.Partitions = []transport.Partition{p}
	}
	cfg := core.Config{
		Processes: *procs, Variables: *vars, Protocol: kind,
		MaxDelay: *jitter, FIFO: *fifo, Seed: *seed,
		Chaos:             chaos,
		RetransmitTimeout: *rto,
		BackoffMax:        *backoffMax,
	}
	if *useTCP {
		if chaos.Enabled() {
			fatal(fmt.Errorf("chaos flags apply to the built-in channel transport, not -tcp"))
		}
		tn, err := transport.NewTCP(*procs)
		if err != nil {
			fatal(err)
		}
		cfg.Transport = tn
		cfg.MaxDelay = 0 // real sockets provide their own timing
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for p := 0; p < *procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(p)))
			for i := 1; i <= *ops; i++ {
				if rng.Float64() < *writeRatio {
					if err := c.Node(p).Write(rng.Intn(*vars), int64(p)*1_000_000+int64(i)); err != nil {
						fatal(err)
					}
				} else {
					if _, err := c.Node(p).Read(rng.Intn(*vars)); err != nil {
						fatal(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	if err := c.Quiesce(ctx); err != nil {
		fatal(err)
	}
	quiesceDur := time.Since(start)

	log := c.Log()
	switch *traceOut {
	case "":
	case "csv":
		if err := log.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "json":
		if err := log.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "diagram":
		fmt.Print(trace.Diagram{MaxRows: 200}.Render(log))
		return
	default:
		fatal(fmt.Errorf("unknown trace format %q", *traceOut))
	}

	fmt.Println(log.Stats(kind.String()))
	fmt.Printf("quiesced in %v\n", quiesceDur.Round(time.Microsecond))

	rep, err := checker.Audit(log)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("audit: safe=%v causally-consistent=%v in-P=%v exactly-once=%v\n",
		rep.Safe(), rep.CausallyConsistent(), rep.InP(), rep.ExactlyOnce())
	fmt.Printf("delays: %d necessary, %d unnecessary (write-delay optimal: %v)\n",
		rep.NecessaryDelays, rep.UnnecessaryDelays, rep.WriteDelayOptimal())
	if n := len(rep.SafetyViolations); n > 0 {
		fmt.Printf("SAFETY VIOLATIONS (%d):\n", n)
		for _, v := range rep.SafetyViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.LegalityViolations); n > 0 {
		fmt.Printf("ILLEGAL READS (%d):\n", n)
		for _, v := range rep.LegalityViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.DuplicateApplies); n > 0 {
		fmt.Printf("DUPLICATE APPLIES (%d):\n", n)
		for _, v := range rep.DuplicateApplies {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
}

// parsePartition parses "start-end:a,b/c,d" into a timed link cut
// between process groups {a,b} and {c,d}.
func parsePartition(s string) (transport.Partition, error) {
	var p transport.Partition
	window, groups, ok := strings.Cut(s, ":")
	if !ok {
		return p, fmt.Errorf("partition %q: want start-end:group/group", s)
	}
	startS, endS, ok := strings.Cut(window, "-")
	if !ok {
		return p, fmt.Errorf("partition window %q: want start-end", window)
	}
	var err error
	if p.Start, err = time.ParseDuration(startS); err != nil {
		return p, fmt.Errorf("partition start: %w", err)
	}
	if p.End, err = time.ParseDuration(endS); err != nil {
		return p, fmt.Errorf("partition end: %w", err)
	}
	aS, bS, ok := strings.Cut(groups, "/")
	if !ok {
		return p, fmt.Errorf("partition groups %q: want group/group", groups)
	}
	if p.A, err = parseProcs(aS); err != nil {
		return p, err
	}
	if p.B, err = parseProcs(bS); err != nil {
		return p, err
	}
	return p, nil
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("partition group %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	os.Exit(1)
}
