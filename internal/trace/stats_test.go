package trace

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.StdDev != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]int64{5})
	if s.Count != 1 || s.Min != 5 || s.Max != 5 || s.Mean != 5 || s.StdDev != 0 || s.Total != 5 {
		t.Errorf("singleton summary = %+v", s)
	}
	// 1..9: mean 5, population variance 60/9, quantiles by nearest rank.
	xs := []int64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	s = Summarize(xs)
	if s.Count != 9 || s.Min != 1 || s.Max != 9 || s.Total != 45 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if want := math.Sqrt(60.0 / 9.0); math.Abs(s.StdDev-want) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.P50 != 5 || s.P95 != 9 || s.P99 != 9 {
		t.Errorf("quantiles p50=%d p95=%d p99=%d", s.P50, s.P95, s.P99)
	}
	if xs[0] != 9 {
		t.Error("Summarize modified its input")
	}
}

// TestSummarizeLargeOffset is the regression test for the variance
// computation: wall-clock nanosecond timestamps are huge numbers with
// tiny spread, exactly the regime where the naive sumSq/n − mean² form
// cancels catastrophically (garbage or negative variance, NaN stddev).
// Welford's algorithm must report the same spread regardless of offset.
func TestSummarizeLargeOffset(t *testing.T) {
	base := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	want := Summarize(base).StdDev // sqrt(8.25) ≈ 2.872
	if math.Abs(want-math.Sqrt(8.25)) > 1e-9 {
		t.Fatalf("baseline stddev = %v, want sqrt(8.25)", want)
	}
	// Offsets stop at 1e15: beyond ~9e15 float64 itself cannot represent
	// the samples distinctly, which no summation algorithm can undo. At
	// 1e15 the naive formula was already off by orders of magnitude.
	for _, offset := range []int64{1e12, 1e14, 1e15} {
		xs := make([]int64, len(base))
		for i, x := range base {
			xs[i] = offset + x
		}
		s := Summarize(xs)
		if math.IsNaN(s.StdDev) {
			t.Errorf("offset %g: stddev is NaN", float64(offset))
			continue
		}
		if math.Abs(s.StdDev-want) > 1e-3 {
			t.Errorf("offset %g: stddev = %v, want %v (catastrophic cancellation?)",
				float64(offset), s.StdDev, want)
		}
		if math.Abs(s.Mean-(float64(offset)+4.5)) > 1 {
			t.Errorf("offset %g: mean = %v", float64(offset), s.Mean)
		}
	}
}
