package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// NetEventKind enumerates transport-level observability events emitted
// by the chaos and reliability layers. They are distinct from protocol
// trace events: they describe the fate of frames, not of writes.
type NetEventKind int

// Transport-level events.
const (
	// EvDrop: a frame was dropped by fault injection (loss or partition).
	EvDrop NetEventKind = iota
	// EvDuplicate: fault injection transmitted an extra copy of a frame.
	EvDuplicate
	// EvRetransmit: the reliability sublayer re-sent an unacked frame.
	EvRetransmit
	// EvDupDiscard: the reliability sublayer discarded a frame whose
	// sequence number it had already delivered.
	EvDupDiscard
	// EvSuspect: the failure detector at process To stopped hearing
	// heartbeats from process From and now suspects it crashed.
	EvSuspect
	// EvAlive: the failure detector at process To heard from a
	// previously suspected process From again.
	EvAlive

	// numNetEventKinds is the exhaustiveness sentinel: every kind above
	// must have a name in netEventKindNames (enforced by tests).
	numNetEventKinds
)

// netEventKindNames names every NetEventKind; the trace tests assert
// the table is exhaustive so new kinds cannot print as bare integers.
var netEventKindNames = [numNetEventKinds]string{
	EvDrop:       "net-drop",
	EvDuplicate:  "net-dup",
	EvRetransmit: "retransmit",
	EvDupDiscard: "dup-discard",
	EvSuspect:    "suspect",
	EvAlive:      "alive",
}

// String implements fmt.Stringer.
func (k NetEventKind) String() string {
	if k >= 0 && k < numNetEventKinds && netEventKindNames[k] != "" {
		return netEventKindNames[k]
	}
	return fmt.Sprintf("NetEventKind(%d)", int(k))
}

// NetEvent is one transport-level occurrence. Observers receive them
// synchronously from transport goroutines and must not block.
type NetEvent struct {
	Kind     NetEventKind
	From, To int
	Msg      Message
	// Attempts is the retransmission count so far (EvRetransmit only).
	Attempts int
}

// Observer consumes NetEvents. A nil Observer disables observation.
type Observer func(NetEvent)

// Partition cuts all traffic between the process groups A and B during
// the window [Start, End) measured from transport construction. Frames
// crossing the cut are dropped; the reliability sublayer's
// retransmissions restore them after the partition heals.
type Partition struct {
	Start, End time.Duration
	A, B       []int
}

// cuts reports whether the partition severs the from→to link at
// elapsed time t.
func (p Partition) cuts(from, to int, t time.Duration) bool {
	if t < p.Start || t >= p.End {
		return false
	}
	return (contains(p.A, from) && contains(p.B, to)) ||
		(contains(p.B, from) && contains(p.A, to))
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ChaosConfig parameterizes fault injection.
type ChaosConfig struct {
	// LossRate is the probability a frame is silently dropped. Must be
	// in [0, 1); rate 1 would sever every link permanently.
	LossRate float64
	// DupRate is the probability an accepted frame is transmitted
	// twice, in [0, 1].
	DupRate float64
	// ReorderRate is the probability an accepted frame is held back by
	// ReorderDelay before transmission, creating reordering bursts even
	// over FIFO links. In [0, 1].
	ReorderRate float64
	// ReorderDelay is the hold-back applied to burst-delayed frames
	// (default 2ms when ReorderRate > 0).
	ReorderDelay time.Duration
	// Partitions is the link-cut schedule.
	Partitions []Partition
	// Seed drives fault sampling.
	Seed int64
}

// Validate reports configuration errors.
func (c ChaosConfig) Validate() error {
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("transport: LossRate = %g, want [0,1)", c.LossRate)
	}
	if c.DupRate < 0 || c.DupRate > 1 {
		return fmt.Errorf("transport: DupRate = %g, want [0,1]", c.DupRate)
	}
	if c.ReorderRate < 0 || c.ReorderRate > 1 {
		return fmt.Errorf("transport: ReorderRate = %g, want [0,1]", c.ReorderRate)
	}
	if c.ReorderDelay < 0 {
		return fmt.Errorf("transport: ReorderDelay = %v", c.ReorderDelay)
	}
	for i, p := range c.Partitions {
		if p.End < p.Start || p.Start < 0 {
			return fmt.Errorf("transport: partition %d window [%v, %v)", i, p.Start, p.End)
		}
	}
	return nil
}

// Enabled reports whether any fault is configured.
func (c ChaosConfig) Enabled() bool {
	return c.LossRate > 0 || c.DupRate > 0 || c.ReorderRate > 0 || len(c.Partitions) > 0
}

// Chaos wraps a Transport with fault injection: frames may be lost,
// duplicated, held back (reordered), or cut by timed partitions. It
// deliberately WEAKENS the Transport contract — Flush only waits for
// frames chaos chose to transmit — so it must sit underneath a
// Reliable layer whenever the exactly-once contract is required.
type Chaos struct {
	cfg   ChaosConfig
	inner Transport
	obs   Observer
	start time.Time

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	closeMu sync.RWMutex
	closed  bool
	held    counter // frames sleeping out a reorder burst
}

// NewChaos wraps inner with fault injection. obs may be nil.
func NewChaos(inner Transport, cfg ChaosConfig, obs Observer) (*Chaos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReorderRate > 0 && cfg.ReorderDelay == 0 {
		cfg.ReorderDelay = 2 * time.Millisecond
	}
	return &Chaos{
		cfg:   cfg,
		inner: inner,
		obs:   obs,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Register implements Transport.
func (c *Chaos) Register(id int, h Handler) { c.inner.Register(id, h) }

// Send implements Transport: it transmits m zero, one, or two times.
func (c *Chaos) Send(m Message) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed {
		return
	}
	elapsed := time.Since(c.start)
	for _, p := range c.cfg.Partitions {
		if p.cuts(m.From, m.To, elapsed) {
			c.emit(NetEvent{Kind: EvDrop, From: m.From, To: m.To, Msg: m})
			return
		}
	}
	loss, dup, burst := c.sample()
	if loss {
		c.emit(NetEvent{Kind: EvDrop, From: m.From, To: m.To, Msg: m})
		return
	}
	if burst {
		c.held.add(1)
		go func() {
			defer c.held.add(-1)
			time.Sleep(c.cfg.ReorderDelay)
			c.inner.Send(m)
		}()
	} else {
		c.inner.Send(m)
	}
	if dup {
		c.emit(NetEvent{Kind: EvDuplicate, From: m.From, To: m.To, Msg: m})
		c.inner.Send(m)
	}
}

// sample draws this frame's fault outcomes under one lock acquisition.
func (c *Chaos) sample() (loss, dup, burst bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.LossRate > 0 && c.rng.Float64() < c.cfg.LossRate {
		return true, false, false
	}
	if c.cfg.DupRate > 0 && c.rng.Float64() < c.cfg.DupRate {
		dup = true
	}
	if c.cfg.ReorderRate > 0 && c.rng.Float64() < c.cfg.ReorderRate {
		burst = true
	}
	return false, dup, burst
}

// Flush implements Transport: it waits for every frame chaos actually
// transmitted (dropped frames are gone by design).
func (c *Chaos) Flush() {
	c.held.wait()
	c.inner.Flush()
}

// Close implements Transport.
func (c *Chaos) Close() error {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.closeMu.Unlock()
	c.held.wait()
	return c.inner.Close()
}

func (c *Chaos) emit(e NetEvent) {
	if c.obs != nil {
		c.obs(e)
	}
}
