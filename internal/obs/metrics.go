// Package obs is the live observability layer of the runtime: a
// low-overhead metrics registry (atomic counters, gauges and
// fixed-bucket histograms — no locks on the hot path), causal
// propagation spans tracking each write from Write_co-stamped issue to
// apply at every replica, a streaming JSONL event sink, and the HTTP
// plumbing (/metrics in Prometheus text format, expvar, pprof) that
// makes a long chaos or crash run visible while it executes instead of
// only after Quiesce.
//
// The layer consumes the same trace.Event stream the post-hoc checkers
// audit, so every live counter is definitionally consistent with the
// numbers trace.Log reports at the end of the run — the integration
// tests assert exactly that.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are
// lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 samples (nanoseconds
// by convention). Observation is lock-free: one atomic add on the
// matching bucket plus count and sum.
type Histogram struct {
	bounds  []int64 // inclusive upper bounds, strictly increasing
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// DefaultLatencyBuckets spans 1µs to 10s — wide enough for both the
// immediate in-process transport (sub-millisecond propagation) and
// chaos runs with multi-second retransmission backoff.
var DefaultLatencyBuckets = []int64{
	1_000, 10_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000, 1_000_000_000, 10_000_000_000,
}

// NewHistogram builds a histogram with the given bucket upper bounds
// (nil means DefaultLatencyBuckets). Bounds must be strictly
// increasing; a final +Inf bucket is implicit.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	cp := make([]int64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, buckets: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable, which beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot returns the per-bucket cumulative counts aligned with
// Bounds() plus the +Inf bucket as the final element.
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.buckets))
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the matching bucket. It returns 0 on an empty
// histogram; samples beyond the last bound clamp to it.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if float64(cum+n) >= rank && n > 0 {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one name=value metric dimension.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{name, value} }

// labelKey renders labels canonically (sorted) for registry lookup and
// Prometheus exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Name < cp[j].Name })
	var b strings.Builder
	for i, l := range cp {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	return b.String()
}

// metric is one registered series: a Counter, Gauge, Histogram, or a
// gauge callback evaluated at scrape time.
type metric struct {
	labels  string // canonical label string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

// family groups every series of one metric name.
type family struct {
	name, help, typ string
	order           []string // insertion order of label keys
	series          map[string]*metric
}

// Registry holds metric families and renders them. Registration takes
// a lock; the returned Counter/Gauge/Histogram handles are lock-free,
// so callers register once at wiring time and hold the pointers on the
// hot path.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) fam(name, help, typ string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*metric)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	return f
}

func (f *family) get(labels []Label) (*metric, bool) {
	k := labelKey(labels)
	m, ok := f.series[k]
	if !ok {
		m = &metric{labels: k}
		f.series[k] = m
		f.order = append(f.order, k)
	}
	return m, ok
}

// Counter returns the counter for name+labels, creating it on first
// use. Re-registering returns the same instance.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.fam(name, help, "counter").get(labels)
	if !ok {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.fam(name, help, "gauge").get(labels)
	if !ok {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a callback gauge evaluated at scrape time — for
// quantities some other subsystem already tracks (un-acked frames in
// the reliability sublayer, suspected pairs in the failure detector).
// The callback must be safe to invoke from scrape goroutines.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.fam(name, help, "gauge").get(labels)
	m.fn = fn
}

// CounterFunc registers a callback counter evaluated at scrape time —
// the counter-typed sibling of GaugeFunc, for monotone totals some
// other subsystem already accumulates in its own atomics (bytes on the
// wire in the transport codec). The callback must be monotone and safe
// to invoke from scrape goroutines.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.fam(name, help, "counter").get(labels)
	m.fn = func() int64 { return int64(fn()) }
}

// Histogram returns the histogram for name+labels, creating it with
// the given bounds (nil = DefaultLatencyBuckets) on first use.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.fam(name, help, "histogram").get(labels)
	if !ok {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}
