package service_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/vclock"
)

// BenchmarkFrontierWaitWakeup measures the token-admission wakeup path:
// each iteration writes pinned at replica 0 and then reads pinned at
// replica 1 with the session token, so the read must wait until the
// write propagates and applies at replica 1. Per-op time is replication
// latency plus how fast waitFrontier notices the frontier moved — the
// part the notification-based wait is meant to shrink.
func BenchmarkFrontierWaitWakeup(b *testing.B) {
	benchWakeup(b, core.Config{Processes: 2, Variables: 1})
}

// BenchmarkFrontierWaitWakeupDelayed is the same measurement with a
// 500µs replication delay, so the admission wait really parks: the
// difference from the raw link delay is pure wakeup overhead, which a
// poll loop pays in sleep-grid quantization and a notification wait
// does not.
func BenchmarkFrontierWaitWakeupDelayed(b *testing.B) {
	benchWakeup(b, core.Config{
		Processes: 2, Variables: 1,
		MinDelay: 500 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
	})
}

// BenchmarkWritesUnderParkedWaiters measures the write hot path while
// 64 admission waits are parked on the same replica behind a token it
// can never reach (a component only another replica could advance). A
// poll-based wait re-takes the replica lock for a dominance check every
// sleep tick per waiter; a notification-based wait costs the apply path
// one atomic load. The gap is the tax blocked readers put on writers.
func BenchmarkWritesUnderParkedWaiters(b *testing.B) {
	cl, err := core.NewCluster(core.Config{Processes: 2, Variables: 1})
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	srv, err := service.New(service.Config{
		Cluster: cl,
		// Longer than the benchmark: the parked waiters stay parked.
		WaitTimeout: time.Hour,
	})
	if err != nil {
		b.Fatalf("service.New: %v", err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Park 64 reads at replica 0 behind a p1-component the benchmark's
	// p0-only writes can never satisfy.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const parked = 64
	done := make(chan struct{}, parked)
	for i := 0; i < parked; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			s := c.Session()
			s.Resume(vclock.VC{0, 1 << 40})
			s.Use(0).Read(ctx, 0) // blocks until cancel
		}()
	}
	// Writes race the waiters' wakeup checks for replica 0.
	s := c.Session()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Use(0).Write(context.Background(), 0, int64(i)); err != nil {
			b.Fatalf("Write: %v", err)
		}
	}
	b.StopTimer()
	cancel()
	for i := 0; i < parked; i++ {
		<-done
	}
}

func benchWakeup(b *testing.B, ccfg core.Config) {
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	srv, err := service.New(service.Config{Cluster: cl})
	if err != nil {
		b.Fatalf("service.New: %v", err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	s := c.Session()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Use(0).Write(ctx, 0, int64(i)); err != nil {
			b.Fatalf("Write: %v", err)
		}
		if _, err := s.Use(1).Read(ctx, 0); err != nil {
			b.Fatalf("Read: %v", err)
		}
	}
}
