GO ?= go

.PHONY: check ci build test vet race bench smoke throughput fuzz vuln clean

## check: the full gate — vet, build, tests, and a short race pass.
check: vet build test race

## ci: what .github/workflows/ci.yml runs — the full gate plus the
## dsmbench smoke sweep and the hot-path throughput gate (their
## dsmbench/v1 scorecards are uploaded as CI artifacts) plus a
## vulnerability scan when govulncheck is on PATH.
ci: check smoke throughput vuln

## smoke: the fast dsmbench subset (visibility, ws, obsoverhead) with
## the machine-readable scorecard written to smoke-scorecard.json.
smoke:
	$(GO) run ./cmd/dsmbench -exp smoke -json smoke-scorecard.json

## throughput: the live hot-path scorecard, gated against the committed
## BENCH_throughput.json baseline — fails on a >20% ops/s regression.
throughput:
	$(GO) run ./cmd/dsmbench -exp throughput-smoke -ops 20000 \
		-baseline BENCH_throughput.json -json throughput-scorecard.json

## vuln: govulncheck over the whole module; skipped quietly when the
## tool isn't installed (it is not vendored and CI may run offline).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: race-detector pass over the library; short mode keeps the
## soak and wide-sweep tests out of the hot path.
race:
	$(GO) test -race -short ./internal/...

## bench: the experiment sweeps as runnable benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

## fuzz: a brief fuzzing burst on the scenario parser (corpus seeds
## under internal/scenario/testdata replay in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/scenario

clean:
	$(GO) clean ./...
	rm -f smoke-scorecard.json throughput-scorecard.json
