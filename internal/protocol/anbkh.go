package protocol

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// anbkh is the Ahamad–Neiger–Burns–Kohli–Hutto causal memory protocol
// [1], the baseline of Section 3.6. Writes are broadcast and applied in
// causal *message-delivery* order: each message carries the sender's
// Fidge–Mattern vector clock over apply events, and a receiver delivers
// m from p_j only when it has applied every write that happened-before
// m's send.
//
// Because the clock counts every write the sender has APPLIED — not
// just the writes in the →co past of the new write — ANBKH manufactures
// dependencies out of mere message arrival order ("false causality",
// footnote 7 / Figure 3) and is therefore not write-delay optimal:
//
//	X_ANBKH(apply_k(w)) = {apply_k(w') : send(w') → send(w)} ⊇ X_co-safe.
type anbkh struct {
	id int
	n  int

	// vt is the Fidge–Mattern clock: vt[j] counts writes of p_j applied
	// here; the own component counts own writes. It doubles as the Apply
	// vector — in ANBKH the two coincide, which is exactly why every
	// applied write becomes a dependency of the next outgoing one.
	vt vclock.VC

	vals    []int64
	writers []history.WriteID
}

// NewANBKH returns an ANBKH replica for process p of n over m variables.
func NewANBKH(p, n, m int) Replica {
	return &anbkh{
		id:      p,
		n:       n,
		vt:      vclock.New(n),
		vals:    make([]int64, m),
		writers: make([]history.WriteID, m),
	}
}

func (r *anbkh) ProcID() int { return r.id }
func (r *anbkh) Kind() Kind  { return ANBKH }

// LocalWrite ticks the own component and ships the full clock — which
// includes every write applied so far, the source of false causality.
func (r *anbkh) LocalWrite(x int, v int64) (Update, bool) {
	r.vt.Tick(r.id)
	u := Update{
		ID:    history.WriteID{Proc: r.id, Seq: int(r.vt.Get(r.id))},
		Var:   x,
		Val:   v,
		Clock: r.vt.Clone(),
		Prev:  r.writers[x],
	}
	r.vals[x] = v
	r.writers[x] = u.ID
	return u, true
}

// Read is wait-free and touches no control state.
func (r *anbkh) Read(x int) (int64, history.WriteID) {
	return r.vals[x], r.writers[x]
}

// Status is the classic causal-broadcast delivery condition:
//
//	u.Clock[j] = vt[j] + 1   ∧   ∀k ≠ j: u.Clock[k] ≤ vt[k]
func (r *anbkh) Status(u Update) Deliverability {
	from := u.From()
	if u.Clock.Get(from) != r.vt.Get(from)+1 {
		return Blocked
	}
	for k := 0; k < r.n; k++ {
		if k == from {
			continue
		}
		if u.Clock.Get(k) > r.vt.Get(k) {
			return Blocked
		}
	}
	return Deliverable
}

// Apply installs the value and advances the clock; the absorbed
// component count makes this apply a dependency of every future
// outgoing write.
func (r *anbkh) Apply(u Update) {
	if s := r.Status(u); s != Deliverable {
		panic(fmt.Sprintf("anbkh: Apply of %v while %v (vt=%v)", u, s, r.vt))
	}
	r.vals[u.Var] = u.Val
	r.writers[u.Var] = u.ID
	r.vt.Tick(u.From())
}

// Discard is never legal for ANBKH (it is in 𝒫).
func (r *anbkh) Discard(u Update) {
	panic(fmt.Sprintf("anbkh: Discard(%v) on a protocol in 𝒫", u))
}

// ControlClock implements Introspector.
func (r *anbkh) ControlClock() vclock.VC { return r.vt.Clone() }

// ApplyClock implements Introspector. For ANBKH it equals ControlClock.
func (r *anbkh) ApplyClock() vclock.VC { return r.vt.Clone() }

// Value implements Introspector.
func (r *anbkh) Value(x int) (int64, history.WriteID) { return r.vals[x], r.writers[x] }
