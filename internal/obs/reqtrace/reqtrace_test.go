package reqtrace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStageStringAndParseRoundTrip(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || strings.Contains(name, "?") {
			t.Fatalf("stage %d has no name", s)
		}
		got, ok := ParseStage(name)
		if !ok || got != s {
			t.Fatalf("ParseStage(%q) = %v,%v, want %v,true", name, got, ok, s)
		}
	}
	if _, ok := ParseStage("no-such-stage"); ok {
		t.Fatal("ParseStage accepted an unknown name")
	}
	if got := Stage(200).String(); got != "stage(?)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

func TestNewTraceIDNonzero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		seen[id] = true
	}
	if len(seen) < 60 {
		t.Fatalf("trace IDs heavily colliding: %d unique of 64", len(seen))
	}
}

func TestSampleRate(t *testing.T) {
	if SampleRate(0).Hit() || SampleRate(-1).Hit() {
		t.Fatal("rate <= 0 must never hit")
	}
	if !SampleRate(1).Hit() || !SampleRate(2).Hit() {
		t.Fatal("rate >= 1 must always hit")
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if SampleRate(0.5).Hit() {
			hits++
		}
	}
	if hits < 300 || hits > 700 {
		t.Fatalf("rate 0.5 hit %d/1000 — badly skewed", hits)
	}
}

func TestReqMarkAttributesElapsed(t *testing.T) {
	r := NewRecorder(Config{Threshold: -time.Nanosecond})
	q := r.Begin()
	time.Sleep(2 * time.Millisecond)
	q.Mark(StageAdmission)
	time.Sleep(time.Millisecond)
	q.Mark(StageApply)
	q.Add(StageBackoff, 5*time.Millisecond)
	if d := q.StageDur(StageAdmission); d < (1 * time.Millisecond).Nanoseconds() {
		t.Fatalf("admission attributed %dns, want >= ~2ms", d)
	}
	if d := q.StageDur(StageApply); d <= 0 {
		t.Fatalf("apply attributed %dns, want > 0", d)
	}
	if d := q.StageDur(StageBackoff); d != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("Add attributed %dns, want exactly 5ms", d)
	}
	if d := q.StageDur(StageDedup); d != 0 {
		t.Fatalf("untouched stage has %dns", d)
	}
	stages := q.Stages(nil)
	if len(stages) != 3 {
		t.Fatalf("Stages rendered %d entries, want 3: %+v", len(stages), stages)
	}
	// Enum order, nonzero only.
	if stages[0].Stage != "admission" || stages[1].Stage != "apply" || stages[2].Stage != "backoff" {
		t.Fatalf("stage order wrong: %+v", stages)
	}
}

func TestReqSkipDoesNotAttribute(t *testing.T) {
	r := NewRecorder(Config{Threshold: -time.Nanosecond})
	q := r.Begin()
	time.Sleep(2 * time.Millisecond)
	q.Skip()
	q.Mark(StageApply)
	if d := q.StageDur(StageApply); d > (1 * time.Millisecond).Nanoseconds() {
		t.Fatalf("Skip leaked %dns into the next mark", d)
	}
	var total int64
	for s := Stage(0); s < NumStages; s++ {
		total += q.StageDur(s)
	}
	if total > (1 * time.Millisecond).Nanoseconds() {
		t.Fatalf("skipped time attributed somewhere: %dns total", total)
	}
}

func TestReqNilSafe(t *testing.T) {
	var q *Req
	q.Mark(StageApply)
	q.Skip()
	q.Add(StageApply, time.Second)
	if q.StageDur(StageApply) != 0 {
		t.Fatal("nil Req returned nonzero duration")
	}
}

func TestServerStagesWirePairs(t *testing.T) {
	r := NewRecorder(Config{Threshold: -time.Nanosecond})
	q := r.Begin()
	q.Add(StageDedup, time.Microsecond)
	q.Add(StageApply, 2*time.Microsecond)
	q.Add(StageAwait, time.Second) // client stage: must not leak to the wire
	pairs := q.ServerStages(nil)
	if len(pairs) != 2 {
		t.Fatalf("ServerStages = %v, want 2 server-side pairs", pairs)
	}
	if pairs[0] != [2]uint64{uint64(StageDedup), 1000} || pairs[1] != [2]uint64{uint64(StageApply), 2000} {
		t.Fatalf("ServerStages pairs wrong: %v", pairs)
	}
}

func TestRecorderHistogramsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(Config{Registry: reg, Origin: "server", Threshold: -time.Nanosecond})
	for i := 0; i < 10; i++ {
		q := r.Begin()
		q.Add(StageApply, time.Millisecond)
		r.End(q, Meta{Kind: "write", Status: "ok", OK: true, Proc: 0, Var: 1})
	}
	if got := r.StageHistogram(StageApply).Count(); got != 10 {
		t.Fatalf("apply histogram count = %d, want 10", got)
	}
	if got := r.TotalHistogram().Count(); got != 10 {
		t.Fatalf("total histogram count = %d, want 10", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"dsm_svc_stage_ns_bucket{",
		`stage="apply"`,
		"dsm_svc_request_ns_count 10",
		"dsm_svc_trace_sampled_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestRecorderClientPrefix(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(Config{Registry: reg, Origin: "client", Threshold: -time.Nanosecond})
	q := r.Begin()
	q.Add(StageAwait, time.Millisecond)
	r.End(q, Meta{Kind: "read", Status: "ok", OK: true})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if !strings.Contains(text, "dsm_cli_stage_ns_bucket{") || !strings.Contains(text, `stage="await"`) {
		t.Error("client recorder did not register dsm_cli_ series")
	}
}

func TestTailSamplingByThreshold(t *testing.T) {
	r := NewRecorder(Config{Threshold: 5 * time.Millisecond})
	fast := r.Begin()
	fast.Add(StageApply, time.Microsecond)
	if _, retained := r.End(fast, Meta{Kind: "read", Status: "ok", OK: true}); retained {
		t.Fatal("fast OK request was retained")
	}
	slow := r.Begin()
	slow.TraceID = 77
	time.Sleep(4 * time.Millisecond)
	slow.Mark(StageFrontierWait)
	time.Sleep(3 * time.Millisecond)
	slow.Mark(StageApply)
	total, retained := r.End(slow, Meta{Kind: "write", Status: "ok", OK: true, Proc: 2, Var: 3})
	if !retained {
		t.Fatalf("slow request (total=%dns) not retained at 5ms threshold", total)
	}
	recs := r.Records()
	if len(recs) != 1 {
		t.Fatalf("Records() = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != 77 || rec.Kind != "write" || rec.Proc != 2 || rec.Var != 3 {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if rec.StageSum() > rec.TotalNs {
		t.Fatalf("stage sum %d exceeds total %d", rec.StageSum(), rec.TotalNs)
	}
	if r.Sampled() != 1 {
		t.Fatalf("Sampled() = %d, want 1", r.Sampled())
	}
}

func TestTailSamplingNonOKAndForced(t *testing.T) {
	r := NewRecorder(Config{Threshold: time.Hour})
	bad := r.Begin()
	if _, retained := r.End(bad, Meta{Kind: "write", Status: "unavailable", OK: false, Err: "down"}); !retained {
		t.Fatal("non-OK request not retained")
	}
	forced := r.Begin()
	forced.Sampled = true
	if _, retained := r.End(forced, Meta{Kind: "read", Status: "ok", OK: true}); !retained {
		t.Fatal("force-sampled request not retained")
	}
	neither := r.Begin()
	if _, retained := r.End(neither, Meta{Kind: "read", Status: "ok", OK: true}); retained {
		t.Fatal("fast OK unforced request retained under 1h threshold")
	}
	if got := r.Records(); len(got) != 2 {
		t.Fatalf("Records() = %d, want 2", len(got))
	}
	if got := r.Records()[0].Err; got != "down" {
		t.Fatalf("error detail lost: %q", got)
	}
}

func TestThresholdDisabled(t *testing.T) {
	r := NewRecorder(Config{Threshold: -time.Nanosecond})
	q := r.Begin()
	time.Sleep(time.Millisecond)
	if _, retained := r.End(q, Meta{OK: true, Kind: "read", Status: "ok"}); retained {
		t.Fatal("latency sampling retained despite disabled threshold")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4, Threshold: time.Hour})
	for i := 0; i < 10; i++ {
		q := r.Begin()
		q.TraceID = uint64(i + 1)
		q.Sampled = true
		r.End(q, Meta{Kind: "read", Status: "ok", OK: true})
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(i + 7); rec.TraceID != want {
			t.Fatalf("ring[%d].TraceID = %d, want %d (newest-4 oldest-first)", i, rec.TraceID, want)
		}
	}
	if r.Sampled() != 10 {
		t.Fatalf("Sampled() = %d, want 10", r.Sampled())
	}
}

func TestExemplarStampedOnTailSample(t *testing.T) {
	r := NewRecorder(Config{Threshold: -time.Nanosecond})
	q := r.Begin()
	q.TraceID = 42
	q.Add(StageFrontierWait, 50*time.Millisecond) // >= exemplar floor
	q.Add(StageApply, time.Microsecond)           // below floor
	r.End(q, Meta{Kind: "write", Status: "ok", OK: true})
	if got := r.Exemplar(StageFrontierWait); got != 42 {
		t.Fatalf("Exemplar(frontier_wait) = %d, want 42", got)
	}
	if got := r.Exemplar(StageApply); got != 0 {
		t.Fatalf("Exemplar(apply) = %d, want 0 (below floor)", got)
	}
}

func TestRecordJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(Config{Threshold: time.Hour})
	q := r.Begin()
	q.TraceID = 9
	q.Sampled = true
	q.WriteProc = 1
	q.WriteSeq = 3
	q.Attempts = 2
	q.Add(StageApply, time.Millisecond)
	r.End(q, Meta{Kind: "write", Status: "ok", OK: true, Proc: 1, Var: 0})
	var buf bytes.Buffer
	if err := r.WriteRecords(&buf); err != nil {
		t.Fatalf("WriteRecords: %v", err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("round-trip decoded %d records, want 1", len(got))
	}
	want := r.Records()[0]
	g := got[0]
	if g.TraceID != want.TraceID || g.WriteProc != want.WriteProc ||
		g.WriteSeq != want.WriteSeq || g.Attempts != want.Attempts ||
		g.TotalNs != want.TotalNs || len(g.Stages) != len(want.Stages) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", g, want)
	}
}

func TestReadRecordsMalformed(t *testing.T) {
	_, err := ReadRecords(strings.NewReader("{\"origin\":\"server\"}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed line decoded without error")
	}
}

func TestSinkWriterDrainsAndCounts(t *testing.T) {
	var buf syncBuffer
	s := NewSinkWriter(&buf, 8)
	for i := 0; i < 5; i++ {
		s.Record(Record{TraceID: uint64(i + 1), Origin: "server", Kind: "read", Status: "ok"})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := ReadRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("sink wrote %d records, want 5", len(recs))
	}
	if s.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", s.Dropped())
	}
	s.Record(Record{}) // after Close: safe, dropped or written — must not panic
}

func TestRecorderConcurrentEnds(t *testing.T) {
	r := NewRecorder(Config{Capacity: 64, Threshold: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := r.Begin()
				q.TraceID = uint64(g*1000 + i + 1)
				q.Sampled = i%10 == 0
				q.Add(StageApply, time.Microsecond)
				r.End(q, Meta{Kind: "write", Status: "ok", OK: true})
			}
		}(g)
	}
	wg.Wait()
	if got := r.TotalHistogram().Count(); got != 1600 {
		t.Fatalf("total count = %d, want 1600", got)
	}
	if got := r.Sampled(); got != 160 {
		t.Fatalf("Sampled() = %d, want 160", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the sink's drain
// goroutine writes while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
