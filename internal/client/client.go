// Package client is the session-side counterpart of internal/service:
// a connection-multiplexing, pipelining client for dsmd with causal
// session tokens.
//
// One Client owns one logical connection and any number of concurrent
// requests on it: each request carries a tag, the read loop matches
// responses back by tag, and completions arrive in whatever order the
// server finishes them. Sessions layer the causal contract on top — a
// Session threads its token (a vclock frontier of everything the
// session has observed) through every request and merges each
// response's advanced token back, which is all it takes for the server
// to enforce read-your-writes and monotonic-reads across arbitrary
// replica switches. Tokens are portable: Token/Resume hand a session's
// causal past to another client, carrying the guarantee with it.
//
// The logical connection is fault tolerant. When the TCP stream dies,
// the client redials with capped exponential backoff and replays every
// un-acknowledged in-flight request on the fresh stream; writes carry a
// per-session op ID ((SID, OpSeq) in the wire frame) that the server's
// exactly-once window dedups, so a write whose response was lost
// applies once no matter how many times it is replayed. Retryable
// server verdicts (StatusRetry, StatusOverloaded) are retried with the
// same backoff under a per-call deadline; every call resolves — to its
// value, or to a typed error — never hangs. Config.DisableRetry
// restores the PR 6 fail-fast behaviour.
package client

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// Errors mapped from response statuses and connection state.
var (
	// ErrClosed reports a request on (or interrupted by) a closed client.
	ErrClosed = errors.New("client: connection closed")
	// ErrShutdown reports a server that is draining or closing.
	ErrShutdown = errors.New("client: server shutting down")
	// ErrUnavailable reports a replica that cannot serve the session now
	// (crash-stopped, or its frontier cannot reach the session token).
	ErrUnavailable = errors.New("client: replica unavailable")
	// ErrBadRequest reports a request the server rejected as malformed.
	ErrBadRequest = errors.New("client: bad request")
	// ErrRetryable reports a retryable condition the client ran out of
	// deadline retrying: no live replica had reached the session token.
	ErrRetryable = errors.New("client: retryable")
	// ErrOverloaded reports a load-shedding server the client ran out of
	// deadline backing off from.
	ErrOverloaded = errors.New("client: server overloaded")
)

// Retryable reports whether err marks a condition worth retrying at a
// higher level (backoff already applied): the server shed load or asked
// for a retry, and the call's deadline ran out first.
func Retryable(err error) bool {
	return errors.Is(err, ErrRetryable) || errors.Is(err, ErrOverloaded)
}

// maxFrame mirrors the server's inbound bound; a response frame larger
// than this marks a corrupt stream.
const maxFrame = 1 << 16

// Config parameterizes a Client.
type Config struct {
	// Addr is the dsmd address to dial.
	Addr string

	// DisableRetry restores fail-fast semantics: no reconnect, no
	// replay, no op IDs on writes, retryable statuses surface as
	// errors, and no per-call deadline is imposed.
	DisableRetry bool

	// CallTimeout bounds one call end to end, including reconnects and
	// status retries; past it the call returns its last typed error.
	// 0 defaults to 15s. The context still applies on top.
	CallTimeout time.Duration

	// ReconnectWindow bounds how long the client keeps redialing a dead
	// address before failing terminally with ErrClosed. 0 defaults to 3s.
	ReconnectWindow time.Duration

	// BackoffBase and BackoffMax shape the capped exponential backoff
	// (with jitter) used between redials and status retries. 0 defaults
	// to 2ms base, 250ms cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Metrics, when set, receives the client-side metrics on the shared
	// registry: dsm_cli_retries_total, dsm_cli_reconnects_total, the
	// dsm_cli_call_ns latency histogram, and the per-stage
	// dsm_cli_stage_ns decomposition (backoff / send / await).
	Metrics *obs.Registry

	// TraceSample is the fraction of calls stamped with wire trace
	// context, in (0, 1]; 0 disables. A sampled call carries a fresh
	// trace ID plus the force-sample flag, so the server retains its
	// side of the timeline and the two records join in cmd/dsmtrace.
	TraceSample float64

	// TraceThreshold is the client-side tail-sampling bound: a call
	// whose end-to-end latency reaches it retains its full timeline even
	// when unsampled (so do calls that end in an error). 0 defaults to
	// 20ms; negative disables latency-based sampling.
	TraceThreshold time.Duration

	// TraceRing bounds the ring of retained call records; 0 → 1024.
	TraceRing int

	// TraceSink, when set, receives every retained call record. It must
	// not block.
	TraceSink func(reqtrace.Record)
}

// withDefaults resolves zero values.
func (cfg Config) withDefaults() Config {
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 15 * time.Second
	}
	if cfg.ReconnectWindow == 0 {
		cfg.ReconnectWindow = 3 * time.Second
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	return cfg
}

// call is one in-flight request: the response lands on ch, req is kept
// for replay after a reconnect, and base is the request token the
// server delta-encoded the response token against.
type call struct {
	req  protocol.Request
	base vclock.VC
	ch   chan protocol.Response
}

// cliMetrics is the client's registered metric set; with no registry
// the handles are unregistered but still live, so the hot path never
// branches.
type cliMetrics struct {
	retries    *obs.Counter
	reconnects *obs.Counter
	callNs     *obs.Histogram
}

// callBuckets spans loopback microseconds to multi-second retry storms.
var callBuckets = []int64{
	10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000,
	5_000_000, 10_000_000, 25_000_000, 50_000_000, 100_000_000,
	250_000_000, 1_000_000_000, 5_000_000_000, 15_000_000_000,
}

func newCliMetrics(reg *obs.Registry) *cliMetrics {
	if reg == nil {
		return &cliMetrics{
			retries:    &obs.Counter{},
			reconnects: &obs.Counter{},
			callNs:     obs.NewHistogram(callBuckets),
		}
	}
	return &cliMetrics{
		retries:    reg.Counter("dsm_cli_retries_total", "calls retried after a retryable server verdict"),
		reconnects: reg.Counter("dsm_cli_reconnects_total", "successful redials of a lost connection"),
		callNs:     reg.Histogram("dsm_cli_call_ns", "end-to-end call latency including retries and backoff", callBuckets),
	}
}

// Client multiplexes tagged requests over one fault-tolerant dsmd
// connection.
type Client struct {
	cfg    Config
	sid    uint64        // session identity for the exactly-once window
	opSeq  atomic.Uint64 // per-write op sequence under sid
	met    *cliMetrics
	trace  *reqtrace.Recorder
	sample reqtrace.SampleRate

	wmu sync.Mutex // serializes request frames onto the current conn

	mu           sync.Mutex
	conn         net.Conn // nil while reconnecting
	next         uint64
	pending      map[uint64]*call
	err          error // terminal error, set once
	closed       bool
	reconnecting bool
	done         chan struct{} // closed on terminal failure/Close
}

// Dial connects to a dsmd server with fault tolerance on.
func Dial(addr string) (*Client, error) {
	return DialConfig(Config{Addr: addr})
}

// DialConfig connects with explicit tuning.
func DialConfig(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", cfg.Addr, err)
	}
	c := &Client{
		cfg:    cfg,
		sid:    newSID(),
		met:    newCliMetrics(cfg.Metrics),
		sample: reqtrace.SampleRate(cfg.TraceSample),
		trace: reqtrace.NewRecorder(reqtrace.Config{
			Registry:  cfg.Metrics,
			Origin:    "client",
			Threshold: cfg.TraceThreshold,
			Capacity:  cfg.TraceRing,
			Sink:      cfg.TraceSink,
		}),
		conn:    conn,
		pending: map[uint64]*call{},
		done:    make(chan struct{}),
	}
	go c.readLoop(conn)
	return c, nil
}

// Trace returns the client's call-trace recorder: per-stage histograms
// plus the ring of tail-sampled call timelines.
func (c *Client) Trace() *reqtrace.Recorder { return c.trace }

// newSID draws a random nonzero session ID; zero on the wire means "no
// exactly-once semantics".
func newSID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded fallback: unique enough per process lifetime.
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// Close tears the connection down; in-flight requests fail with
// ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
		c.fail(ErrClosed)
	} else {
		// Mid-reconnect: the reconnect loop observes closed and fails
		// the client terminally; wait for it.
		c.fail(ErrClosed)
	}
	<-c.done
	return err
}

// fail latches the terminal error, fails everything pending, and
// closes done. Idempotent; first error wins.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	c.pending = map[uint64]*call{}
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	close(c.done)
}

// Pending returns the number of in-flight calls — test instrumentation
// for cancellation and replay behaviour.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Do sends one request and waits for its response. The request's Tag
// is assigned by the client; a non-OK status is returned as both the
// response and a mapped error. With retry enabled (the default) the
// call transparently survives connection loss and retries retryable
// statuses under the per-call deadline.
//
// Every Do opens a call span on the trace recorder: the per-stage
// histograms (backoff / send / await) are always on, and a sampled
// call (TraceSample) carries wire trace context so the server's side
// of the timeline joins the client's by trace ID.
func (c *Client) Do(outer context.Context, req protocol.Request) (protocol.Response, error) {
	q := c.trace.Begin()
	if c.sample.Hit() {
		q.TraceID = reqtrace.NewTraceID()
		q.Sampled = true
		req.TraceID = q.TraceID
		req.TraceSampled = true
	}
	resp, err := c.doTraced(outer, req, q)
	c.endTrace(q, req, resp, err)
	return resp, err
}

// endTrace closes a call span: the latency histogram, the stage
// decomposition, the span linkage to the write the call touched, and —
// for sampled/slow/failed calls — the retained record with the
// server's echoed stage timeline folded in.
func (c *Client) endTrace(q *reqtrace.Req, req protocol.Request, resp protocol.Response, err error) {
	m := reqtrace.Meta{
		Kind:   kindString(req.Kind),
		Status: errClass(err),
		OK:     err == nil,
		Proc:   resp.Proc,
		Var:    req.Var,
	}
	if req.Kind == protocol.ReqPing {
		m.Var = -1
	}
	if err != nil {
		m.Err = err.Error()
	}
	if resp.From.Seq > 0 {
		q.WriteProc, q.WriteSeq = resp.From.Proc, resp.From.Seq
	}
	if q.TraceID != 0 && resp.TraceID == q.TraceID {
		for _, sn := range resp.TraceStages {
			m.ServerStages = append(m.ServerStages, reqtrace.StageNs{
				Stage: reqtrace.Stage(sn[0]).String(), Ns: int64(sn[1]),
			})
		}
	}
	total, _ := c.trace.End(q, m)
	c.met.callNs.Observe(total)
}

// kindString names a request kind for trace records.
func kindString(k uint8) string {
	switch k {
	case protocol.ReqPing:
		return "ping"
	case protocol.ReqRead:
		return "read"
	case protocol.ReqWrite:
		return "write"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// errClass labels a call outcome for trace records.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrRetryable):
		return "retry"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrBadRequest):
		return "bad-request"
	case errors.Is(err, ErrShutdown):
		return "shutdown"
	case errors.Is(err, ErrUnavailable):
		return "unavailable"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "error"
}

// doTraced is Do's body with the span threaded through.
func (c *Client) doTraced(outer context.Context, req protocol.Request, q *reqtrace.Req) (protocol.Response, error) {
	if c.cfg.DisableRetry {
		return c.doOnce(outer, req, true, q)
	}
	ctx, cancel := context.WithTimeout(outer, c.cfg.CallTimeout)
	defer cancel()
	// Stamp writes with the session op ID so server-side dedup makes
	// every replay and retry of this call apply at most once.
	if req.Kind == protocol.ReqWrite && req.SID == 0 {
		req.SID = c.sid
		req.OpSeq = c.opSeq.Add(1)
	}
	backoff := c.cfg.BackoffBase
	var lastResp protocol.Response
	var lastErr error
	for {
		resp, err := c.doOnce(ctx, req, false, q)
		retryable := errors.Is(err, ErrRetryable) || errors.Is(err, ErrOverloaded)
		if !retryable {
			// When the per-call deadline (not the caller's context) fires
			// mid-attempt, the server's last verdict is the real answer.
			if errors.Is(err, context.DeadlineExceeded) && outer.Err() == nil && lastErr != nil {
				return lastResp, lastErr
			}
			return resp, err
		}
		lastResp, lastErr = resp, err
		c.met.retries.Inc()
		// Back off before the retry; the deadline still bounds the call.
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			q.Mark(reqtrace.StageBackoff)
			return resp, err // the typed retryable error, not ctx.Err()
		case <-c.done:
			q.Mark(reqtrace.StageBackoff)
			return resp, err
		}
		q.Mark(reqtrace.StageBackoff)
		if backoff *= 2; backoff > c.cfg.BackoffMax {
			backoff = c.cfg.BackoffMax
		}
	}
}

// doOnce runs one attempt: register, send (if a conn is up; otherwise
// the replay after reconnect sends it), await. failFast selects the
// legacy error contract. The span's send stage covers register+frame+
// write; everything after lands in await.
func (c *Client) doOnce(ctx context.Context, req protocol.Request, failFast bool, q *reqtrace.Req) (protocol.Response, error) {
	q.Attempts++
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		q.Mark(reqtrace.StageSend)
		return protocol.Response{}, err
	}
	c.next++
	req.Tag = c.next
	cl := &call{req: req, base: req.Token, ch: make(chan protocol.Response, 1)}
	c.pending[req.Tag] = cl
	conn := c.conn
	c.mu.Unlock()

	if conn != nil {
		if err := c.send(conn, req); err != nil {
			if failFast {
				c.forget(req.Tag)
				q.Mark(reqtrace.StageSend)
				return protocol.Response{}, fmt.Errorf("%w: %v", ErrClosed, err)
			}
			// The stream died under the send; hand it to the reconnect
			// path and leave the call registered for replay.
			c.connLost(conn, err)
		}
	}
	q.Mark(reqtrace.StageSend)

	select {
	case resp := <-cl.ch:
		q.Mark(reqtrace.StageAwait)
		return resp, statusErr(resp)
	case <-c.done:
		// Drain the race: the response may have landed between the
		// connection dying and this select firing.
		select {
		case resp := <-cl.ch:
			q.Mark(reqtrace.StageAwait)
			return resp, statusErr(resp)
		default:
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		q.Mark(reqtrace.StageAwait)
		return protocol.Response{}, err
	case <-ctx.Done():
		c.forget(req.Tag)
		q.Mark(reqtrace.StageAwait)
		return protocol.Response{}, ctx.Err()
	}
}

// send frames and writes one request onto conn.
func (c *Client) send(conn net.Conn, req protocol.Request) error {
	payload := req.AppendBinary(make([]byte, 0, 64))
	frame := binary.AppendUvarint(make([]byte, 0, len(payload)+4), uint64(len(payload)))
	frame = append(frame, payload...)
	c.wmu.Lock()
	_, err := conn.Write(frame)
	c.wmu.Unlock()
	return err
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.Do(ctx, protocol.Request{Kind: protocol.ReqPing})
	return err
}

// forget abandons an in-flight call (context cancellation, legacy-mode
// write failure). A late response for the tag is discarded by the read
// loop, and the call is excluded from replay.
func (c *Client) forget(tag uint64) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

// readLoop delivers response frames to their calls until the stream
// dies, then hands the connection to the recovery path.
func (c *Client) readLoop(conn net.Conn) {
	fr := newFrameReader(conn)
	var err error
	for {
		var frame []byte
		if frame, err = fr.next(); err != nil {
			break
		}
		tag, perr := protocol.PeekTag(frame)
		if perr != nil {
			err = fmt.Errorf("client: corrupt response frame: %w", perr)
			break
		}
		c.mu.Lock()
		cl, ok := c.pending[tag]
		delete(c.pending, tag)
		c.mu.Unlock()
		if !ok {
			// Response for an abandoned call; nothing to deliver.
			continue
		}
		resp, n, derr := protocol.DecodeResponse(frame, cl.base)
		if derr != nil || n != len(frame) {
			err = fmt.Errorf("client: corrupt response frame: %w", derr)
			break
		}
		cl.ch <- resp
	}
	c.connLost(conn, err)
}

// connLost retires a dead connection. In legacy mode (or when closed)
// it is terminal; otherwise it starts the reconnect loop, leaving
// pending calls registered — they are the replay set.
func (c *Client) connLost(conn net.Conn, err error) {
	conn.Close()
	c.mu.Lock()
	if c.conn != conn {
		// A stale loss report (older conn, or already handed off).
		c.mu.Unlock()
		return
	}
	c.conn = nil
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		err = ErrClosed
	}
	if c.closed || c.cfg.DisableRetry || c.err != nil {
		c.mu.Unlock()
		c.fail(err)
		return
	}
	if c.reconnecting {
		c.mu.Unlock()
		return
	}
	c.reconnecting = true
	c.mu.Unlock()
	go c.reconnect(err)
}

// reconnect redials with capped exponential backoff plus jitter until
// ReconnectWindow runs out, then fails the client terminally. On
// success it installs the fresh conn and replays every pending call in
// tag order.
func (c *Client) reconnect(cause error) {
	deadline := time.Now().Add(c.cfg.ReconnectWindow)
	backoff := c.cfg.BackoffBase
	for {
		c.mu.Lock()
		if c.closed || c.err != nil {
			c.mu.Unlock()
			c.fail(ErrClosed)
			return
		}
		c.mu.Unlock()
		conn, err := net.Dial("tcp", c.cfg.Addr)
		if err == nil {
			if c.install(conn) {
				return
			}
			conn.Close()
			c.fail(ErrClosed)
			return
		}
		cause = err
		if time.Now().After(deadline) {
			c.fail(fmt.Errorf("%w: reconnect window exhausted: %v", ErrClosed, cause))
			return
		}
		time.Sleep(jitter(backoff))
		if backoff *= 2; backoff > c.cfg.BackoffMax {
			backoff = c.cfg.BackoffMax
		}
	}
}

// install makes conn the live connection and replays the pending calls
// on it, oldest tag first. False means the client closed meanwhile.
func (c *Client) install(conn net.Conn) bool {
	c.mu.Lock()
	if c.closed || c.err != nil {
		c.mu.Unlock()
		return false
	}
	c.conn = conn
	c.reconnecting = false
	c.met.reconnects.Inc()
	replay := make([]*call, 0, len(c.pending))
	for _, cl := range c.pending {
		replay = append(replay, cl)
	}
	c.mu.Unlock()
	sort.Slice(replay, func(i, j int) bool { return replay[i].req.Tag < replay[j].req.Tag })
	go c.readLoop(conn)
	for _, cl := range replay {
		if err := c.send(conn, cl.req); err != nil {
			// The fresh conn died mid-replay; the new readLoop (or the
			// failed send's connLost) restarts recovery, and the calls
			// not yet replayed are still pending.
			c.connLost(conn, err)
			return true
		}
	}
	return true
}

// jitter spreads d over [d/2, d) so reconnect storms decorrelate.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(mrand.Int63n(int64(d/2)))
}

// statusErr maps a response status to a typed error, nil for OK.
func statusErr(r protocol.Response) error {
	var base error
	switch r.Status {
	case protocol.StatusOK:
		return nil
	case protocol.StatusBadRequest:
		base = ErrBadRequest
	case protocol.StatusShutdown:
		base = ErrShutdown
	case protocol.StatusRetry:
		base = ErrRetryable
	case protocol.StatusOverloaded:
		base = ErrOverloaded
	default:
		base = ErrUnavailable
	}
	if r.Err == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, r.Err)
}

// Session is one causal session over a Client. It is safe for
// concurrent use; concurrent operations pipeline on the connection and
// their tokens merge, so the session's past only grows.
type Session struct {
	c *Client

	mu      sync.Mutex
	token   vclock.VC
	proc    int
	noToken bool
}

// Session starts a fresh causal session (no past, any replica).
func (c *Client) Session() *Session {
	return &Session{c: c, proc: -1}
}

// NoTokenSession starts a deliberately broken session that never
// sends or records tokens — no session guarantees. It exists so the
// conformance suite can prove it detects the violations tokens
// prevent.
func (c *Client) NoTokenSession() *Session {
	return &Session{c: c, proc: -1, noToken: true}
}

// Use pins the session to replica p (server-side round-robin when -1).
func (s *Session) Use(p int) *Session {
	s.mu.Lock()
	s.proc = p
	s.mu.Unlock()
	return s
}

// Token snapshots the session's causal past, portable to Resume on any
// session of the same cluster.
func (s *Session) Token() vclock.VC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.token.Clone()
}

// Resume merges tok into the session's past: the session now also
// depends on everything tok counts.
func (s *Session) Resume(tok vclock.VC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.absorbLocked(tok)
}

// absorbLocked merges a token into the session under s.mu.
func (s *Session) absorbLocked(tok vclock.VC) {
	if s.noToken || len(tok) == 0 {
		return
	}
	if len(s.token) != len(tok) {
		s.token = tok.Clone()
		return
	}
	s.token.Merge(tok)
}

// begin snapshots the request token and pinned replica.
func (s *Session) begin() (vclock.VC, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.noToken {
		return nil, s.proc
	}
	return s.token.Clone(), s.proc
}

// finish folds a response back into the session.
func (s *Session) finish(r protocol.Response) {
	s.mu.Lock()
	s.absorbLocked(r.Token)
	s.mu.Unlock()
}

// Read returns the value of variable x, waiting until the serving
// replica holds the session's past.
func (s *Session) Read(ctx context.Context, x int) (int64, error) {
	v, _, err := s.ReadMeta(ctx, x)
	return v, err
}

// ReadMeta is Read plus the identity of the write that produced the
// value (for audit trails).
func (s *Session) ReadMeta(ctx context.Context, x int) (int64, history.WriteID, error) {
	tok, proc := s.begin()
	resp, err := s.c.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: proc, Var: x, Token: tok,
	})
	if err != nil {
		return 0, history.WriteID{}, err
	}
	s.finish(resp)
	return resp.Val, resp.From, nil
}

// Write stores v into variable x. The write is issued on a replica
// already holding the session's past, and the advanced token makes it
// part of that past for every later operation.
func (s *Session) Write(ctx context.Context, x int, v int64) error {
	tok, proc := s.begin()
	resp, err := s.c.Do(ctx, protocol.Request{
		Kind: protocol.ReqWrite, Proc: proc, Var: x, Val: v, Token: tok,
	})
	if err != nil {
		return err
	}
	s.finish(resp)
	return nil
}

// frameReader decodes uvarint-length-prefixed frames, mirroring the
// server side.
type frameReader struct {
	r   io.Reader
	buf [1]byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (f *frameReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(f.r, f.buf[:]); err != nil {
		return 0, err
	}
	return f.buf[0], nil
}

// next reads one frame.
func (f *frameReader) next() ([]byte, error) {
	n, err := binary.ReadUvarint(f)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("client: frame of %d bytes exceeds %d", n, maxFrame)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(f.r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
