package checker

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Every protocol's runs must pass the serialization audit — including
// the writing-semantics ones, whose logical applies stand in for the
// skipped writes.
func TestSerializationAuditAllProtocols(t *testing.T) {
	for _, kind := range []protocol.Kind{
		protocol.OptP, protocol.ANBKH, protocol.WSRecv,
		protocol.OptPNoReadMerge, protocol.OptPWS, protocol.WSSend,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				scripts, err := workload.Scripts(workload.Config{
					Procs: 3, Vars: 2, OpsPerProc: 15, WriteRatio: 0.6,
					ThinkMin: 1, ThinkMax: 40, Hot: 0.4, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: 3, Vars: 2, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 150, seed*9+2),
				}, scripts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rep, err := Audit(res.Log)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := SerializationAudit(res.Log, rep); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// The H1 paper scenario passes the serialization audit for both
// protagonist protocols.
func TestSerializationAuditH1(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		res, rep := runH1(t, kind, fig36Latency())
		if err := SerializationAudit(res.Log, rep); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// The eager (broken) protocol fails the serialization audit on the
// adversarial arrival order.
func TestSerializationAuditCatchesEager(t *testing.T) {
	scripts := h1Scripts()
	res, err := sim.Run(sim.Config{
		Procs: 3, Vars: 2,
		NewReplica: newEager,
		Latency:    fig36Latency(),
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(res.Log)
	if err != nil {
		t.Fatal(err)
	}
	if err := SerializationAudit(res.Log, rep); err == nil {
		t.Fatal("eager protocol passed the serialization audit")
	}
}
