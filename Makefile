GO ?= go

.PHONY: check build test vet race bench fuzz clean

## check: the full gate — vet, build, tests, and a short race pass.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: race-detector pass over the library; short mode keeps the
## soak and wide-sweep tests out of the hot path.
race:
	$(GO) test -race -short ./internal/...

## bench: the experiment sweeps as runnable benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

## fuzz: a brief fuzzing burst on the scenario parser (corpus seeds
## under internal/scenario/testdata replay in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/scenario

clean:
	$(GO) clean ./...
