package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/durability"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Errors returned by cluster operations.
var (
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = errors.New("core: cluster closed")
	// ErrBadVariable reports an out-of-range variable index.
	ErrBadVariable = errors.New("core: variable index out of range")
	// ErrDown reports an operation on a crash-stopped process.
	ErrDown = errors.New("core: process is down")
)

// Cluster hosts the processes of a live DSM system.
type Cluster struct {
	cfg    Config
	tr     transport.Transport
	nodes  []*Node
	det    *transport.Detector
	start  time.Time
	hasTok bool

	// mu guards everything below plus the trace log; cond is signaled
	// on every state change that can affect Quiesce. Lock order is
	// always Node.mu before Cluster.mu.
	mu           sync.Mutex
	cond         *sync.Cond
	log          *trace.Log
	issuedBy     []int  // writes issued per process
	propagatedBy []int  // non-marker updates actually broadcast per process
	counted      []int  // writes (logically) applied per process
	unsentBy     []int  // deferred writes awaiting the token per process
	down         []bool // crash-stopped processes (mirrors Node.down)
	closed       bool

	tokenStop chan struct{}
	tokenDone chan struct{}
	crashStop chan struct{}
	crashDone chan struct{}
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:          cfg,
		start:        time.Now(),
		log:          trace.NewLog(cfg.Processes, cfg.Variables),
		issuedBy:     make([]int, cfg.Processes),
		propagatedBy: make([]int, cfg.Processes),
		counted:      make([]int, cfg.Processes),
		unsentBy:     make([]int, cfg.Processes),
		down:         make([]bool, cfg.Processes),
	}
	c.cond = sync.NewCond(&c.mu)
	tr := cfg.Transport
	if tr == nil {
		netCfg := transport.Config{
			Procs:    cfg.Processes,
			MinDelay: cfg.MinDelay,
			MaxDelay: cfg.MaxDelay,
			FIFO:     cfg.FIFO,
			Seed:     cfg.Seed,
		}
		// An RTO below the data+ack round trip floods the links with
		// spurious retransmissions (dedup absorbs them, but they waste
		// bandwidth and pollute the stats), so default above the worst
		// jittered round trip.
		rto := cfg.RetransmitTimeout
		if rto == 0 {
			rto = 2*cfg.MaxDelay + time.Millisecond
		}
		var err error
		if cfg.Chaos.Enabled() {
			tr, err = transport.NewFaulty(netCfg, cfg.Chaos, transport.ReliableConfig{
				RetransmitTimeout: rto,
				BackoffMax:        cfg.BackoffMax,
				Seed:              cfg.Seed,
			}, c.noteNetEvent)
		} else {
			tr, err = transport.New(netCfg)
		}
		if err != nil {
			return nil, err
		}
	}
	c.tr = tr
	for p := 0; p < cfg.Processes; p++ {
		r := protocol.New(cfg.Protocol, p, cfg.Processes, cfg.Variables)
		n := &Node{c: c, id: p, replica: r}
		if _, ok := r.(protocol.TokenBatcher); ok {
			c.hasTok = true
		}
		c.nodes = append(c.nodes, n)
		tr.Register(p, n.handle)
	}
	if cfg.WALDir != "" {
		for _, n := range c.nodes {
			n.archive = make([][]protocol.Update, cfg.Processes)
			wal, err := durability.Create(c.walPath(n.id), cfg.WALSync, n.snapshotLocked())
			if err != nil {
				for _, m := range c.nodes {
					if m.wal != nil {
						m.wal.Close()
					}
				}
				tr.Close()
				return nil, fmt.Errorf("core: p%d journal: %w", n.id+1, err)
			}
			n.wal = wal
			c.observeWAL(n)
		}
	}
	if cfg.HeartbeatInterval > 0 {
		det, err := transport.NewDetector(tr, transport.HeartbeatConfig{
			Procs:        cfg.Processes,
			Interval:     cfg.HeartbeatInterval,
			SuspectAfter: cfg.SuspectAfter,
		}, c.noteNetEvent)
		if err != nil {
			c.closeWALs()
			tr.Close()
			return nil, err
		}
		c.det = det
		det.Start()
	}
	if c.hasTok {
		interval := cfg.TokenInterval
		if interval == 0 {
			interval = time.Millisecond
		}
		c.tokenStop = make(chan struct{})
		c.tokenDone = make(chan struct{})
		go c.tokenLoop(interval)
	}
	if len(cfg.Crashes) > 0 {
		c.crashStop = make(chan struct{})
		c.crashDone = make(chan struct{})
		go c.crashLoop()
	}
	c.registerObsGauges()
	return c, nil
}

// observeWAL points n's journal fsync timings at the observer's WAL
// latency histogram. Safe to call with obs disabled or no journal.
func (c *Cluster) observeWAL(n *Node) {
	if c.cfg.Obs == nil || n.wal == nil {
		return
	}
	o, p := c.cfg.Obs, n.id
	n.wal.SetSyncObserver(func(d time.Duration) { o.ObserveWALSync(p, d) })
}

// registerObsGauges exposes scrape-time gauges for state other
// subsystems already track: per-node pending-buffer depth is derived
// from events inside the observer, but the reliability sublayer's
// resend buffer and the failure detector's suspicion matrix live in
// the transport layer and are polled here instead of mirrored.
func (c *Cluster) registerObsGauges() {
	if c.cfg.Obs == nil {
		return
	}
	reg := c.cfg.Obs.Registry()
	proto := obs.L("protocol", c.cfg.Protocol.String())
	if rel, ok := c.tr.(*transport.Reliable); ok {
		reg.GaugeFunc("dsm_unacked_frames",
			"reliability-sublayer frames awaiting acknowledgment",
			func() int64 { return int64(rel.Unacked()) }, proto)
		reg.GaugeFunc("dsm_dedup_window",
			"reliability-sublayer out-of-order dedup population",
			func() int64 { return int64(rel.DedupWindow()) }, proto)
	}
	if det := c.det; det != nil {
		reg.GaugeFunc("dsm_suspected_pairs",
			"failure-detector (observer, peer) pairs currently under suspicion",
			func() int64 { return int64(det.SuspectedPairs()) }, proto)
	}
}

// walPath returns process p's journal directory.
func (c *Cluster) walPath(p int) string {
	return filepath.Join(c.cfg.WALDir, fmt.Sprintf("node%d", p))
}

// recoveryEnabled reports whether crash recovery (journaling, archives,
// stale-duplicate filtering) is active.
func (c *Cluster) recoveryEnabled() bool { return c.cfg.WALDir != "" }

// closeWALs closes every node's journal (idempotent).
func (c *Cluster) closeWALs() {
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.wal != nil {
			n.wal.Close()
			n.wal = nil
		}
		n.mu.Unlock()
	}
}

// Node returns the i-th process handle.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Processes returns the number of processes.
func (c *Cluster) Processes() int { return c.cfg.Processes }

// Variables returns the number of shared variables.
func (c *Cluster) Variables() int { return c.cfg.Variables }

// Protocol returns the running protocol kind.
func (c *Cluster) Protocol() protocol.Kind { return c.cfg.Protocol }

// Detector returns the heartbeat failure detector, or nil when
// HeartbeatInterval is unset.
func (c *Cluster) Detector() *transport.Detector { return c.det }

// StartTime returns when the cluster came up; crash-schedule offsets
// (Config.Crashes) are measured from this instant.
func (c *Cluster) StartTime() time.Time { return c.start }

// now returns the trace timestamp (nanoseconds since cluster start).
func (c *Cluster) now() int64 { return time.Since(c.start).Nanoseconds() }

// appendEvent records e under the cluster lock, updating the Quiesce
// accounting, tees the event to the live observability layer, and
// wakes waiters. The observer and sink calls are lock-free /
// non-blocking by contract, so holding c.mu across them is safe.
func (c *Cluster) appendEvent(e trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e = c.log.Append(e)
	if c.cfg.Obs != nil {
		c.cfg.Obs.Observe(e)
	}
	if c.cfg.Sink != nil {
		c.cfg.Sink.Record(e)
	}
	switch e.Kind {
	case trace.Issue:
		c.issuedBy[e.Proc]++
		c.counted[e.Proc]++
	case trace.Send:
		if e.Write.Seq > 0 {
			c.propagatedBy[e.Proc]++
		}
	case trace.Apply, trace.Discard:
		if e.Write.Seq > 0 {
			c.counted[e.Proc]++
		}
	}
	c.cond.Broadcast()
}

// noteNetEvent records chaos-stack and failure-detector occurrences in
// the trace. Frame fates never feed Quiesce accounting — the
// reliability sublayer guarantees the protocol-level events come out
// exactly as on a fault-free transport.
func (c *Cluster) noteNetEvent(e transport.NetEvent) {
	switch e.Kind {
	case transport.EvSuspect, transport.EvAlive:
		kind := trace.Suspect
		if e.Kind == transport.EvAlive {
			kind = trace.Alive
		}
		// Detector events carry From=peer, To=observer.
		c.appendEvent(trace.Event{
			Kind: kind, Proc: e.To, Time: c.now(), Val: int64(e.From),
		})
		return
	}
	if e.Msg.Heartbeat {
		return // lost or duplicated probes are the detector's business
	}
	var kind trace.EventKind
	proc := e.From
	val := e.Msg.Update.Val
	switch e.Kind {
	case transport.EvDrop:
		kind = trace.NetDrop
	case transport.EvRetransmit:
		kind = trace.Retransmit
		val = int64(e.Attempts)
	case transport.EvDupDiscard:
		kind, proc = trace.DupDiscard, e.To
	default:
		return // sender-side duplicates surface as receiver DupDiscards
	}
	c.appendEvent(trace.Event{
		Kind: kind, Proc: proc, Time: c.now(),
		Write: e.Msg.Update.ID, Var: e.Msg.Update.Var, Val: val,
	})
}

// quiescedLocked reports whether every propagated write has been
// (logically) applied everywhere live and nothing more is coming.
// Crash-stopped processes are exempt until they restart: their missed
// updates arrive through catch-up, which re-enters them into the
// accounting. Caller holds c.mu.
func (c *Cluster) quiescedLocked() bool {
	totalProp := 0
	for _, p := range c.propagatedBy {
		totalProp += p
	}
	for p := range c.nodes {
		if c.down[p] {
			continue
		}
		// A process must have applied its own issues plus everything
		// the others propagated; deferred writes must all be released.
		expected := c.issuedBy[p] + totalProp - c.propagatedBy[p]
		if c.counted[p] != expected || c.unsentBy[p] != 0 {
			return false
		}
	}
	return true
}

// Quiesce blocks until every write issued so far has reached every live
// replica (discards under writing semantics count as logical applies,
// and writes suppressed at the sender under WS-send count as released
// once their token turn passes), or ctx is done. Crash-stopped
// processes are excluded; Restart them first for full convergence.
// Quiesce on a closed cluster returns ErrClosed.
func (c *Cluster) Quiesce(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			// Take the lock so the broadcast cannot slip between the
			// waiter's ctx check and its cond.Wait.
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()

	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.quiescedLocked() {
		if c.closed {
			return fmt.Errorf("core: quiesce: %w", ErrClosed)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: quiesce: %w", err)
		}
		c.cond.Wait()
	}
	if c.closed {
		return fmt.Errorf("core: quiesce: %w", ErrClosed)
	}
	return nil
}

// Log returns a snapshot copy of the event trace.
func (c *Cluster) Log() *trace.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := trace.NewLog(c.log.NumProcs, c.log.NumVars)
	cp.Events = append(cp.Events, c.log.Events...)
	return cp
}

// Stats returns the run scorecard so far.
func (c *Cluster) Stats() trace.RunStats {
	return c.Log().Stats(c.cfg.Protocol.String())
}

// Audit runs the full correctness audit (safety, causal consistency,
// liveness, delay classification) on the trace recorded so far. Call
// after Quiesce for a complete picture; mid-run audits see a prefix.
func (c *Cluster) Audit() (*checker.Report, error) {
	return checker.Audit(c.Log())
}

// Close stops the crash orchestrator, failure detector and token loop,
// closes the journals, drains the transport, and marks the cluster
// closed. Close is idempotent: the first call does the teardown, later
// calls return nil. Other operations after Close return ErrClosed.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	// Wake Quiesce waiters so they observe the close instead of
	// sleeping forever on a condition that can no longer change.
	c.cond.Broadcast()
	c.mu.Unlock()

	if c.crashStop != nil {
		close(c.crashStop)
		<-c.crashDone
	}
	if c.det != nil {
		c.det.Close()
	}
	if c.hasTok {
		close(c.tokenStop)
		<-c.tokenDone
	}
	c.closeWALs()
	return c.tr.Close()
}

// tokenLoop circulates the token for WS-send-style protocols until
// Close. The rotation skips crash-stopped and suspected holders so one
// down process cannot stall everyone's deferred writes; visits are
// numbered by actual token grants, keeping rounds contiguous for the
// receivers' expected-visit tracking.
func (c *Cluster) tokenLoop(interval time.Duration) {
	defer close(c.tokenDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	visit := 0 // next round number (increments per grant)
	pos := 0   // rotation cursor (increments per considered holder)
	for {
		select {
		case <-c.tokenStop:
			return
		case <-ticker.C:
		}
		// Pick the next live, unsuspected holder in rotation order; if
		// none qualifies this tick, try again next tick.
		holder := -1
		for i := 0; i < c.cfg.Processes; i++ {
			cand := (pos + i) % c.cfg.Processes
			if c.nodeUp(cand) {
				holder = cand
				pos = cand + 1
				break
			}
		}
		if holder == -1 {
			continue
		}
		n := c.nodes[holder]
		n.mu.Lock()
		if n.down.Load() {
			// Crashed between the liveness check and the lock.
			n.mu.Unlock()
			continue
		}
		tb := n.replica.(protocol.TokenBatcher)
		batch := tb.OnToken(visit)
		n.journalLocked(durability.Entry{Kind: durability.EntryToken, Visit: visit})
		c.mu.Lock()
		c.unsentBy[holder] = 0 // every deferred write was drained (or suppressed)
		c.mu.Unlock()
		c.appendEvent(trace.Event{Kind: trace.Token, Proc: holder, Time: c.now()})
		if len(batch) == 0 {
			batch = []protocol.Update{protocol.Marker(holder, visit)}
		}
		for _, u := range batch {
			n.archiveLocked(u)
			c.appendEvent(trace.Event{
				Kind: trace.Send, Proc: holder, Time: c.now(),
				Write: u.ID, Var: u.Var, Val: u.Val,
			})
		}
		n.drainLocked()
		n.mu.Unlock()
		// Send outside the node lock (see Node.Write).
		for _, u := range batch {
			transport.Broadcast(c.tr, c.cfg.Processes, holder, u)
		}
		visit++
	}
}

// nodeUp reports whether p is neither crash-stopped nor suspected.
func (c *Cluster) nodeUp(p int) bool {
	c.mu.Lock()
	down := c.down[p]
	c.mu.Unlock()
	if down {
		return false
	}
	if c.det != nil {
		return c.det.Up(p)
	}
	return true
}

// noteDeferred records a write buffered at its sender awaiting the
// token.
func (c *Cluster) noteDeferred(p int) {
	c.mu.Lock()
	c.unsentBy[p]++
	c.cond.Broadcast()
	c.mu.Unlock()
}

// WriteAt is shorthand for c.Node(p).Write(x, v).
func (c *Cluster) WriteAt(p, x int, v int64) error { return c.nodes[p].Write(x, v) }

// ReadAt is shorthand for c.Node(p).Read(x).
func (c *Cluster) ReadAt(p, x int) (int64, error) { return c.nodes[p].Read(x) }

// ReadMetaAt is shorthand for c.Node(p).ReadMeta(x).
func (c *Cluster) ReadMetaAt(p, x int) (int64, history.WriteID, error) {
	return c.nodes[p].ReadMeta(x)
}
