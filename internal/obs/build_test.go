package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// The build-info pair is scraped over the real debug mux, end to end:
// a constant-1 info metric carrying the binary's identity, plus a
// live uptime gauge.
func TestBuildInfoScrape(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "testbin")
	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE dsm_build_info gauge",
		`component="testbin"`,
		`go_version="go`,
		`revision="`,
		"# TYPE dsm_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q in:\n%s", want, text)
		}
	}
	// The info metric's value is the constant 1 by convention.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "dsm_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("dsm_build_info value != 1: %q", line)
		}
	}
}
