package protocol

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// wsrecv implements receiver-side writing semantics in the style of
// Raynal–Singhal [14] and Baldoni et al. [2], layered on the ANBKH
// delivery machinery.
//
// Writing semantics (Section 3.6): a process may apply w(x) even though
// some w'(x) with w'(x) →co w(x) has not been applied yet, provided no
// write w”(y), y ≠ x, lies between them; w' is then *overwritten* —
// logically applied immediately before w — and its message, when it
// finally arrives, is discarded without installing the value.
//
// Implementation: every update carries Prev, the ID of the write to the
// same variable it directly overwrites in the sender's view. An update
// u from p_j that is blocked on exactly one missing dependency — the
// single write named by u.Prev — may *skip* it: the replica logically
// applies Prev (advancing the apply clock) and installs u. The
// exactly-one-missing check is what enforces the "no w”(y≠x) in
// between" side condition: any such w” would itself be a second
// missing dependency (see the package tests for the argument).
//
// Consequence, per the paper: some writes are never applied (their
// value is never installed) at some processes, so WSRecv is outside the
// class 𝒫. The checker counts these discards in experiment E7.
type wsrecv struct {
	id int
	n  int

	vt vclock.VC // writes of p_j applied or logically applied here

	vals    []int64
	writers []history.WriteID

	// skipped holds writes logically applied ahead of their message;
	// their eventual arrival is Discardable.
	skipped map[history.WriteID]bool

	// skips counts skip events (for stats/tests).
	skips int
}

// NewWSRecv returns a receiver-side writing-semantics replica.
func NewWSRecv(p, n, m int) Replica {
	return &wsrecv{
		id:      p,
		n:       n,
		vt:      vclock.New(n),
		vals:    make([]int64, m),
		writers: make([]history.WriteID, m),
		skipped: make(map[history.WriteID]bool),
	}
}

func (r *wsrecv) ProcID() int { return r.id }
func (r *wsrecv) Kind() Kind  { return WSRecv }

// LocalWrite behaves exactly like ANBKH's, additionally recording the
// overwritten predecessor in Prev.
func (r *wsrecv) LocalWrite(x int, v int64) (Update, bool) {
	r.vt.Tick(r.id)
	u := Update{
		ID:    history.WriteID{Proc: r.id, Seq: int(r.vt.Get(r.id))},
		Var:   x,
		Val:   v,
		Clock: r.vt.Clone(),
		Prev:  r.writers[x],
	}
	r.vals[x] = v
	r.writers[x] = u.ID
	return u, true
}

// Read is wait-free.
func (r *wsrecv) Read(x int) (int64, history.WriteID) {
	return r.vals[x], r.writers[x]
}

// Status extends the ANBKH condition with the two writing-semantics
// outcomes: already-skipped updates are Discardable, and updates whose
// sole missing dependency is their own Prev are Deliverable (the skip
// happens inside Apply).
func (r *wsrecv) Status(u Update) Deliverability {
	if r.skipped[u.ID] {
		return Discardable
	}
	if r.anbkhDeliverable(u) {
		return Deliverable
	}
	if r.skipDeliverable(u) {
		return Deliverable
	}
	return Blocked
}

func (r *wsrecv) anbkhDeliverable(u Update) bool {
	from := u.From()
	if u.Clock.Get(from) != r.vt.Get(from)+1 {
		return false
	}
	for k := 0; k < r.n; k++ {
		if k != from && u.Clock.Get(k) > r.vt.Get(k) {
			return false
		}
	}
	return true
}

// skipDeliverable reports whether u's only missing dependency is the
// single write u.Prev (same variable, by construction).
func (r *wsrecv) skipDeliverable(u Update) bool {
	if u.Prev.IsBottom() || r.skipped[u.Prev] {
		return false
	}
	from := u.From()
	q := u.Prev.Proc
	if q == from {
		// Prev by the sender itself: sender seq gap must be exactly Prev.
		if u.Prev.Seq != u.ID.Seq-1 {
			return false
		}
		if r.vt.Get(from) != u.Clock.Get(from)-2 {
			return false
		}
	} else {
		if u.Clock.Get(from) != r.vt.Get(from)+1 {
			return false
		}
		// The gap on q's component must be exactly the one write Prev.
		if uint64(u.Prev.Seq) != u.Clock.Get(q) || r.vt.Get(q) != u.Clock.Get(q)-1 {
			return false
		}
	}
	// Every other component satisfied.
	for k := 0; k < r.n; k++ {
		if k == from || k == q {
			continue
		}
		if u.Clock.Get(k) > r.vt.Get(k) {
			return false
		}
	}
	return true
}

// Apply installs u, performing the logical apply of u.Prev first when
// this is a skip delivery.
func (r *wsrecv) Apply(u Update) {
	switch {
	case r.anbkhDeliverable(u):
	case r.skipDeliverable(u):
		// Logically apply Prev immediately before u (writing semantics).
		r.skipped[u.Prev] = true
		r.skips++
		r.vt.Tick(u.Prev.Proc)
	default:
		panic(fmt.Sprintf("wsrecv: Apply of %v while blocked (vt=%v)", u, r.vt))
	}
	r.vals[u.Var] = u.Val
	r.writers[u.Var] = u.ID
	r.vt.Tick(u.From())
}

// Discard drops the late message of a write that was logically applied
// by an earlier skip. Control state advanced at skip time; only the
// bookkeeping entry is removed.
func (r *wsrecv) Discard(u Update) {
	if !r.skipped[u.ID] {
		panic(fmt.Sprintf("wsrecv: Discard of %v that was never skipped", u))
	}
	delete(r.skipped, u.ID)
}

// SkipTarget implements Skipper: it names the write Apply(u) would
// logically apply first.
func (r *wsrecv) SkipTarget(u Update) history.WriteID {
	if !r.anbkhDeliverable(u) && r.skipDeliverable(u) {
		return u.Prev
	}
	return history.Bottom
}

// Skips returns how many writes this replica overwrote without
// installing (logical applies).
func (r *wsrecv) Skips() int { return r.skips }

// ControlClock implements Introspector.
func (r *wsrecv) ControlClock() vclock.VC { return r.vt.Clone() }

// ApplyClock implements Introspector.
func (r *wsrecv) ApplyClock() vclock.VC { return r.vt.Clone() }

// Value implements Introspector.
func (r *wsrecv) Value(x int) (int64, history.WriteID) { return r.vals[x], r.writers[x] }
