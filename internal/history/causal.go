package history

import (
	"errors"
	"fmt"
)

// ErrCyclic reports a history whose →co relation is not a partial order
// (a cycle through process-order and read-from edges). Such a history
// can be written down but cannot be produced by any protocol in 𝒫.
var ErrCyclic = errors.New("history: →co contains a cycle")

// Causality is the computed →co relation of a History: the transitive
// closure of process order ∪ read-from, per Section 2. It answers
// precedence, concurrency and causal-past queries over global operation
// indices (see History.Ops).
type Causality struct {
	h *History
	n int

	// pred[i] holds every j with ops[j] →co ops[i].
	pred []bitset
	// succ[i] holds every j with ops[i] →co ops[j].
	succ []bitset
	// topo is a topological order of the direct-edge DAG.
	topo []int
}

// directEdges invokes fn(from, to) for every generator edge of →co:
// consecutive process-order pairs and read-from pairs.
func (h *History) directEdges(fn func(from, to int)) {
	base := 0
	for _, local := range h.Locals {
		for i := 1; i < len(local); i++ {
			fn(base+i-1, base+i)
		}
		base += len(local)
	}
	for i, o := range h.ops {
		if o.IsRead() && !o.From.IsBottom() {
			fn(h.writeIdx[o.From], i)
		}
	}
}

// Causality computes the →co closure. It returns ErrCyclic if the
// history's generator edges contain a cycle.
func (h *History) Causality() (*Causality, error) {
	n := len(h.ops)
	c := &Causality{h: h, n: n}

	// Adjacency and in-degrees of the generator DAG.
	adj := make([][]int, n)
	indeg := make([]int, n)
	h.directEdges(func(from, to int) {
		adj[from] = append(adj[from], to)
		indeg[to]++
	})

	// Kahn topological sort.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	c.topo = make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		c.topo = append(c.topo, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(c.topo) != n {
		return nil, fmt.Errorf("%w: %d of %d operations unreachable in topological sort", ErrCyclic, n-len(c.topo), n)
	}

	// Predecessor closure in topological order:
	// pred[w] = ⋃_{v→w} (pred[v] ∪ {v}).
	c.pred = make([]bitset, n)
	for i := range c.pred {
		c.pred[i] = newBitset(n)
	}
	for _, v := range c.topo {
		for _, w := range adj[v] {
			c.pred[w].or(c.pred[v])
			c.pred[w].set(v)
		}
	}

	// Successor closure in reverse topological order.
	c.succ = make([]bitset, n)
	for i := range c.succ {
		c.succ[i] = newBitset(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := c.topo[i]
		for _, w := range adj[v] {
			c.succ[v].or(c.succ[w])
			c.succ[v].set(w)
		}
	}
	return c, nil
}

// History returns the underlying history.
func (c *Causality) History() *History { return c.h }

// Before reports ops[i] →co ops[j].
func (c *Causality) Before(i, j int) bool { return c.pred[j].has(i) }

// Concurrent reports ops[i] ‖co ops[j] (distinct, neither before the other).
func (c *Causality) Concurrent(i, j int) bool {
	return i != j && !c.Before(i, j) && !c.Before(j, i)
}

// CausalPast returns ↓(ops[i], →co): the global indices of all
// operations strictly before ops[i], in increasing index order.
func (c *Causality) CausalPast(i int) []int {
	return c.pred[i].members(nil)
}

// CausalPastSize returns |↓(ops[i], →co)| without materializing it.
func (c *Causality) CausalPastSize(i int) int { return c.pred[i].count() }

// WritesBefore returns the write operations in ↓(ops[i], →co) as
// WriteIDs in increasing global-index order. Per Definition 4 this is
// exactly X_co-safe(apply_k(ops[i])) for every process k when ops[i] is
// a write.
func (c *Causality) WritesBefore(i int) []WriteID {
	var ids []WriteID
	for _, j := range c.pred[i].members(nil) {
		if o := c.h.ops[j]; o.IsWrite() {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// WriteBefore reports w →co w' for two writes given by ID. It panics if
// either ID is unknown; Bottom is before every operation by convention
// and after none.
func (c *Causality) WriteBefore(w, w2 WriteID) bool {
	if w.IsBottom() {
		return !w2.IsBottom()
	}
	if w2.IsBottom() {
		return false
	}
	i, j := c.mustWrite(w), c.mustWrite(w2)
	return c.Before(i, j)
}

// WriteConcurrent reports w ‖co w' for two distinct writes.
func (c *Causality) WriteConcurrent(w, w2 WriteID) bool {
	if w.IsBottom() || w2.IsBottom() {
		return false
	}
	return c.Concurrent(c.mustWrite(w), c.mustWrite(w2))
}

func (c *Causality) mustWrite(id WriteID) int {
	idx := c.h.WriteIndex(id)
	if idx < 0 {
		panic(fmt.Sprintf("history: unknown write %v", id))
	}
	return idx
}

// Topo returns a topological order of the operations consistent with →co.
func (c *Causality) Topo() []int {
	t := make([]int, len(c.topo))
	copy(t, c.topo)
	return t
}
