package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestScorecardRoundTrip(t *testing.T) {
	in := []Result{
		{
			Name:   "E-test",
			Desc:   "a table",
			Header: []string{"a", "b"},
			Rows:   [][]string{{"1", "2"}, {"3", "4"}},
			Stats: []trace.RunStats{
				{Protocol: "OptP", Procs: 2, Writes: 10, Delays: 1, DelayRate: 0.5},
			},
		},
		{Name: "E-empty", Desc: "no rows", Header: []string{"x"}},
	}
	var buf bytes.Buffer
	if err := WriteScorecard(&buf, in); err != nil {
		t.Fatal(err)
	}
	sc, err := ReadScorecard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Schema != ScorecardSchema {
		t.Errorf("schema = %q", sc.Schema)
	}
	if len(sc.Experiments) != 2 {
		t.Fatalf("experiments = %d, want 2", len(sc.Experiments))
	}
	got := sc.Experiments[0]
	if got.Name != "E-test" || len(got.Rows) != 2 || got.Rows[1][1] != "4" {
		t.Errorf("table round-trip = %+v", got)
	}
	if len(got.Stats) != 1 || got.Stats[0].Protocol != "OptP" || got.Stats[0].DelayRate != 0.5 {
		t.Errorf("stats round-trip = %+v", got.Stats)
	}
}

func TestScorecardRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadScorecard(strings.NewReader(`{"schema":"dsmbench/v99","experiments":[]}`)); err == nil {
		t.Error("accepted an unknown schema version")
	}
	if _, err := ReadScorecard(strings.NewReader("{")); err == nil {
		t.Error("accepted truncated JSON")
	}
}
