package sim_test

import (
	"fmt"
	"log"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Reproducing the paper's Figure 6 run: p3 receives b before a, buffers
// it exactly until a arrives (one necessary delay), and never waits for
// the concurrent c.
func Example() {
	wa := history.WriteID{Proc: 0, Seq: 1}
	wc := history.WriteID{Proc: 0, Seq: 2}
	wb := history.WriteID{Proc: 1, Seq: 1}
	latency := sim.NewScriptedLatency(10).
		Set(wa, 1, 10).Set(wa, 2, 40).
		Set(wc, 1, 20).Set(wc, 2, 60).
		Set(wb, 0, 10).Set(wb, 2, 10)

	scripts := []sim.Script{
		sim.NewScript().Write(0, 1).Write(0, 3),                     // w1(x1)a; w1(x1)c
		sim.NewScript().Await(0, 1).Read(0).Await(0, 3).Write(1, 2), // r2(x1)a; w2(x2)b
		sim.NewScript().Await(1, 2).Read(1).Write(1, 4),             // r3(x2)b; w3(x2)d
	}
	res, err := sim.Run(sim.Config{
		Procs: 3, Vars: 2, Protocol: protocol.OptP, Latency: latency,
	}, scripts)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range res.Log.Delays() {
		fmt.Printf("%v buffered at p%d from t=%d to t=%d\n",
			d.Write, d.Proc+1, d.ReceiptAt, d.AppliedAt)
	}
	fmt.Println("b's Write_co:", res.Updates[wb].Clock)
	// Output:
	// w2#1 buffered at p3 from t=30 to t=40
	// b's Write_co: [1 1 0]
}
