// Command dsmtrace analyzes the tail-sampled request records the
// serving tier emits (dsmd -trace-stream, client.Config.TraceSink,
// reqtrace.Recorder.WriteRecords): JSONL in, forensics out. It answers
// the three questions a p99 regression raises — where does time go
// per stage, which stage puts a request on its critical path, and
// what exactly happened to the slowest calls — and joins client and
// server records of the same call by trace ID, attributing the gap
// between them to the network.
//
// Usage:
//
//	dsmtrace traces.jsonl                 # full report
//	dsmtrace -top 5 server.jsonl client.jsonl
//	dsmd -trace-stream - 2>&1 | dsmtrace  # straight off a daemon
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs/reqtrace"
)

func main() {
	top := flag.Int("top", 10, "how many slowest requests to detail")
	flag.Parse()

	var recs []reqtrace.Record
	paths := flag.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	for _, path := range paths {
		rd := io.Reader(os.Stdin)
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			rd = f
		}
		rs, err := reqtrace.ReadRecords(rd)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		recs = append(recs, rs...)
	}
	if err := report(os.Stdout, recs, *top); err != nil {
		fatal(err)
	}
}

// report renders the full analysis of recs.
func report(w io.Writer, recs []reqtrace.Record, top int) error {
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "dsmtrace: no records")
		return err
	}
	overview(w, recs)
	stageBreakdown(w, recs)
	criticalPath(w, recs)
	slowest(w, recs, top)
	joins(w, recs)
	return nil
}

// overview counts records by origin and by outcome.
func overview(w io.Writer, recs []reqtrace.Record) {
	origins := map[string]int{}
	statuses := map[string]int{}
	kinds := map[string]int{}
	for _, r := range recs {
		origins[r.Origin]++
		statuses[r.Status]++
		kinds[r.Kind]++
	}
	fmt.Fprintf(w, "records: %d  (%s)\n", len(recs), countList(origins))
	fmt.Fprintf(w, "kinds:   %s\n", countList(kinds))
	fmt.Fprintf(w, "status:  %s\n\n", countList(statuses))
}

// countList renders a count map as "k=3 j=1", descending by count.
func countList(m map[string]int) string {
	type kv struct {
		k string
		v int
	}
	kvs := make([]kv, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	parts := make([]string, len(kvs))
	for i, e := range kvs {
		parts[i] = fmt.Sprintf("%s=%d", e.k, e.v)
	}
	return strings.Join(parts, " ")
}

// stageBreakdown prints per-stage latency statistics over every stage
// sample in the record set, enum order — server stages then client
// stages, one shared namespace.
func stageBreakdown(w io.Writer, recs []reqtrace.Record) {
	samples := map[string][]int64{}
	var grand int64
	for _, r := range recs {
		for _, s := range r.Stages {
			samples[s.Stage] = append(samples[s.Stage], s.Ns)
			grand += s.Ns
		}
	}
	fmt.Fprintln(w, "per-stage breakdown (over retained records):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  stage\tcount\tp50\tp99\tmax\tsum\tshare")
	for s := reqtrace.Stage(0); s < reqtrace.NumStages; s++ {
		ns := samples[s.String()]
		if len(ns) == 0 {
			continue
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		var sum int64
		for _, v := range ns {
			sum += v
		}
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%s\t%.1f%%\n",
			s, len(ns), fmtNs(pct(ns, 50)), fmtNs(pct(ns, 99)),
			fmtNs(ns[len(ns)-1]), fmtNs(sum), 100*float64(sum)/float64(grand))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// criticalPath attributes each record to its dominant stage — the
// stage a fix would have to shorten to move that request's latency.
func criticalPath(w io.Writer, recs []reqtrace.Record) {
	dominant := map[string]int{}
	weight := map[string]int64{}
	for _, r := range recs {
		var top reqtrace.StageNs
		for _, s := range r.Stages {
			if s.Ns > top.Ns {
				top = s
			}
		}
		if top.Stage == "" {
			continue
		}
		dominant[top.Stage]++
		weight[top.Stage] += top.Ns
	}
	fmt.Fprintln(w, "critical path (dominant stage per record):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  stage\trecords\tshare\ttime in stage")
	for s := reqtrace.Stage(0); s < reqtrace.NumStages; s++ {
		n := dominant[s.String()]
		if n == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1f%%\t%s\n",
			s, n, 100*float64(n)/float64(len(recs)), fmtNs(weight[s.String()]))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// slowest details the top-N slowest records with their full timelines.
func slowest(w io.Writer, recs []reqtrace.Record, top int) {
	byTotal := append([]reqtrace.Record(nil), recs...)
	sort.SliceStable(byTotal, func(i, j int) bool { return byTotal[i].TotalNs > byTotal[j].TotalNs })
	if top > len(byTotal) {
		top = len(byTotal)
	}
	fmt.Fprintf(w, "slowest %d requests:\n", top)
	for i := 0; i < top; i++ {
		r := byTotal[i]
		id := "-"
		if r.TraceID != 0 {
			id = fmt.Sprintf("%016x", r.TraceID)
		}
		fmt.Fprintf(w, "  %2d. %s %s/%s %s trace=%s", i+1, fmtNs(r.TotalNs), r.Origin, r.Kind, r.Status, id)
		if r.Attempts > 1 {
			fmt.Fprintf(w, " attempts=%d", r.Attempts)
		}
		if r.WriteSeq > 0 {
			fmt.Fprintf(w, " write=(%d,%d)", r.WriteProc, r.WriteSeq)
		}
		fmt.Fprintf(w, "\n      %s\n", timeline(r.Stages, r.TotalNs))
		if len(r.ServerStages) > 0 {
			slack := r.TotalNs - r.ServerStageSum()
			fmt.Fprintf(w, "      server: %s  (network+respond slack %s)\n",
				timeline(r.ServerStages, 0), fmtNs(slack))
		}
		if r.Err != "" {
			fmt.Fprintf(w, "      err: %s\n", r.Err)
		}
	}
	fmt.Fprintln(w)
}

// timeline renders a stage decomposition as "a 1ms | b 2ms"; with a
// nonzero total, the unattributed remainder is appended as "(other)".
func timeline(stages []reqtrace.StageNs, total int64) string {
	parts := make([]string, 0, len(stages)+1)
	var sum int64
	for _, s := range stages {
		parts = append(parts, fmt.Sprintf("%s %s", s.Stage, fmtNs(s.Ns)))
		sum += s.Ns
	}
	if total > 0 && total-sum > 0 {
		parts = append(parts, fmt.Sprintf("(other) %s", fmtNs(total-sum)))
	}
	if len(parts) == 0 {
		return "(no stages)"
	}
	return strings.Join(parts, " | ")
}

// joins matches client and server records of the same call by trace
// ID and attributes the client/server latency gap to the wire.
func joins(w io.Writer, recs []reqtrace.Record) {
	server := map[uint64]reqtrace.Record{}
	for _, r := range recs {
		if r.Origin == "server" && r.TraceID != 0 {
			server[r.TraceID] = r
		}
	}
	var joined int
	var slackSum int64
	for _, r := range recs {
		if r.Origin != "client" || r.TraceID == 0 {
			continue
		}
		s, ok := server[r.TraceID]
		if !ok {
			continue
		}
		joined++
		slackSum += r.TotalNs - s.TotalNs
	}
	if joined == 0 {
		fmt.Fprintln(w, "joined client+server traces: none")
		return
	}
	fmt.Fprintf(w, "joined client+server traces: %d  (mean client-server slack %s)\n",
		joined, fmtNs(slackSum/int64(joined)))
}

// pct returns the p-th percentile of sorted ns (nearest-rank).
func pct(ns []int64, p int) int64 {
	if len(ns) == 0 {
		return 0
	}
	i := (len(ns)*p + 99) / 100
	if i < 1 {
		i = 1
	}
	return ns[i-1]
}

// fmtNs renders nanoseconds at µs precision for readability.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmtrace:", err)
	os.Exit(1)
}
