GO ?= go

.PHONY: check ci build test vet race bench smoke throughput audit-bench metadata-bench replication-bench service-bench chaos-bench trace-bench conformance chaos-conformance fuzz fuzz-smoke vuln clean

## check: the full gate — vet, build, tests, a short race pass, a
## fuzz burst over the wire codec, and the chaos conformance suite
## (fault-injected session guarantees + exactly-once accounting).
check: vet build test race fuzz-smoke chaos-conformance

## ci: what .github/workflows/ci.yml runs — the full gate plus the
## conformance suite under the race detector, the dsmbench smoke sweep,
## the hot-path throughput gate, the offline audit gate, the
## metadata-codec gate, the partial-replication gate, the serving-tier
## gates, plain and chaos, and
## the request-tracing
## overhead gate (their dsmbench/v1 scorecards and the dsmtrace sample
## report are uploaded as CI artifacts) plus a vulnerability scan when
## govulncheck is on PATH.
ci: check conformance smoke throughput audit-bench metadata-bench replication-bench service-bench chaos-bench trace-bench vuln

## smoke: the fast dsmbench subset (visibility, ws, obsoverhead) with
## the machine-readable scorecard written to smoke-scorecard.json.
smoke:
	$(GO) run ./cmd/dsmbench -exp smoke -json smoke-scorecard.json

## throughput: the live hot-path scorecard, gated against the committed
## BENCH_throughput.json baseline — fails on a >20% ops/s regression.
throughput:
	$(GO) run ./cmd/dsmbench -exp throughput-smoke -ops 20000 \
		-baseline BENCH_throughput.json -json throughput-scorecard.json

## audit-bench: the offline-checker scaling gate — one pass over the
## BenchmarkAudit ladder, the fast-vs-dense equivalence property test
## under the race detector, then the audit-scale scorecard gated
## against the committed BENCH_checker.json baseline (fails when any
## shared trace size audits >20% slower). The 1M rung of the baseline
## is measurement-only and is ignored by the gate.
audit-bench:
	$(GO) test -run '^$$' -bench '^BenchmarkAudit$$' -benchtime=1x ./internal/checker
	$(GO) test -race -run 'TestPropertyAuditEquivalence|TestPropertyFastDenseEquivalence' \
		./internal/checker ./internal/history
	$(GO) run ./cmd/dsmbench -exp audit-scale \
		-baseline BENCH_checker.json -json audit-scorecard.json

## metadata-bench: the causality-metadata codec gate — the E-metadata
## sweep (clock/wire bytes and codec time per update on OptP
## steady-state streams at P ∈ {8, 64, 256}), gated against the
## committed BENCH_metadata.json baseline — fails when clock bytes or
## codec time regress >20% at any (procs, mode) cell, or when delta
## and auto stop halving the clock bytes at 64 processes.
metadata-bench:
	$(GO) run ./cmd/dsmbench -exp metadata \
		-baseline BENCH_metadata.json -json metadata-scorecard.json

## replication-bench: the partial-replication gate — the E-partial
## sweep (update copies per write, stored variables per process,
## metadata bytes and read-forwarding counts across replication
## factors r at P ∈ {8, 16}), gated against the committed
## BENCH_replication.json baseline — fails when fan-out or metadata
## bytes regress >20% at any (procs, r) cell, or when the headline
## claim breaks: at 16 processes with r = 4, ≤4 msgs/write and a
## ≥3.5× per-process storage reduction vs full replication.
replication-bench:
	$(GO) run ./cmd/dsmbench -exp partial \
		-baseline BENCH_replication.json -json replication-scorecard.json

## service-bench: the serving-tier scorecard — closed-loop multi-
## connection load against a live dsmd server over TCP loopback, gated
## against the committed BENCH_service.json baseline — fails on a >20%
## ops/s regression at any connection count.
service-bench:
	$(GO) run ./cmd/dsmbench -exp service -ops 2000 \
		-baseline BENCH_service.json -json service-scorecard.json

## chaos-bench: the fault-injected serving-tier scorecard — the same
## closed loop as service-bench but with seeded connection chaos (1%
## kill, 2% stall, 0.5% truncation) on the server's listener, gated
## against the committed BENCH_chaos.json baseline — fails on a >20%
## ops/s regression or a 2× p99 blow-up at any connection count.
chaos-bench:
	$(GO) run ./cmd/dsmbench -exp service-chaos -ops 2000 \
		-baseline BENCH_chaos.json -json chaos-scorecard.json

## trace-bench: the request-tracing overhead gate — the E-service
## closed loop with the full tracing stack on (per-stage histograms on
## both ends, 5% wire sampling, tail sampler live), gated at 5% of the
## committed BENCH_service.json ops/s envelope; always-on tracing must
## stay near-free. The run's tail-sampled records are rendered into a
## sample dsmtrace forensics report (uploaded as a CI artifact).
trace-bench:
	$(GO) run ./cmd/dsmbench -exp trace -ops 2000 \
		-baseline BENCH_service.json -json trace-scorecard.json \
		-trace-out trace-records.jsonl
	$(GO) run ./cmd/dsmtrace trace-records.jsonl > trace-report.txt

## conformance: the session-guarantee suite over real client
## connections, under the race detector — includes the negative case
## that proves the suite catches a token-less (guarantee-less) session.
conformance:
	$(GO) test -race -count=1 ./internal/conformance

## chaos-conformance: the fault-injection gate — the conformance
## workload under three seeds of connection chaos (1% kill + stalls +
## truncation), requiring zero session-guarantee violations, zero
## duplicate writes, exactly-once frontier accounting, and every call
## resolving. Race detector on; part of `make check`.
chaos-conformance:
	$(GO) test -race -count=1 -run '^TestChaosConformance$$' ./internal/conformance

## vuln: govulncheck over the whole module; skipped quietly when the
## tool isn't installed (it is not vendored and CI may run offline).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: race-detector pass over the library; short mode keeps the
## soak and wide-sweep tests out of the hot path.
race:
	$(GO) test -race -short ./internal/...

## bench: the experiment sweeps as runnable benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

## fuzz: a brief fuzzing burst on the scenario parser (corpus seeds
## under internal/scenario/testdata replay in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/scenario

## fuzz-smoke: short fuzzing bursts on the serving-tier wire codec.
## The committed seed corpus under internal/protocol/testdata/fuzz
## replays in plain `make test`, so past crashers stay fatal; this
## target additionally mutates for a few seconds per target.
fuzz-smoke:
	$(GO) test -fuzz '^FuzzWireRequest$$' -fuzztime=5s -run '^$$' ./internal/protocol
	$(GO) test -fuzz '^FuzzWireResponse$$' -fuzztime=5s -run '^$$' ./internal/protocol
	$(GO) test -fuzz '^FuzzWireToken$$' -fuzztime=5s -run '^$$' ./internal/protocol

clean:
	$(GO) clean ./...
	rm -f smoke-scorecard.json throughput-scorecard.json audit-scorecard.json metadata-scorecard.json replication-scorecard.json service-scorecard.json chaos-scorecard.json trace-scorecard.json trace-records.jsonl trace-report.txt
