package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams the log as CSV with a header row, one event per
// line. Columns: seq, kind, proc, time, write_proc, write_seq, var,
// val, from_proc, from_seq, buffered.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"seq", "kind", "proc", "time",
		"write_proc", "write_seq", "var", "val",
		"from_proc", "from_seq", "buffered",
	}); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for _, e := range l.Events {
		rec := []string{
			strconv.Itoa(e.Seq),
			e.Kind.String(),
			strconv.Itoa(e.Proc),
			strconv.FormatInt(e.Time, 10),
			strconv.Itoa(e.Write.Proc),
			strconv.Itoa(e.Write.Seq),
			strconv.Itoa(e.Var),
			strconv.FormatInt(e.Val, 10),
			strconv.Itoa(e.From.Proc),
			strconv.Itoa(e.From.Seq),
			strconv.FormatBool(e.Buffered),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: csv row %d: %w", e.Seq, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonLog is the stable JSON schema of a log.
type jsonLog struct {
	NumProcs int         `json:"num_procs"`
	NumVars  int         `json:"num_vars"`
	Events   []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Seq      int    `json:"seq"`
	Kind     string `json:"kind"`
	Proc     int    `json:"proc"`
	Time     int64  `json:"time"`
	Write    [2]int `json:"write"`
	Var      int    `json:"var"`
	Val      int64  `json:"val"`
	From     [2]int `json:"from"`
	Buffered bool   `json:"buffered,omitempty"`
}

// WriteJSON streams the log as a single JSON document.
func (l *Log) WriteJSON(w io.Writer) error {
	jl := jsonLog{NumProcs: l.NumProcs, NumVars: l.NumVars, Events: make([]jsonEvent, 0, len(l.Events))}
	for _, e := range l.Events {
		jl.Events = append(jl.Events, jsonEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Proc: e.Proc, Time: e.Time,
			Write: [2]int{e.Write.Proc, e.Write.Seq},
			Var:   e.Var, Val: e.Val,
			From:     [2]int{e.From.Proc, e.From.Seq},
			Buffered: e.Buffered,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jl); err != nil {
		return fmt.Errorf("trace: json encode: %w", err)
	}
	return nil
}
