package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/protocol"
)

// TestSoak hammers a live OptP cluster with concurrent writers, readers
// and periodic mid-run audits, then fully audits the final trace. It is
// the long-running stability check of the goroutine runtime; -short
// skips it.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in short mode")
	}
	const (
		procs  = 6
		vars   = 5
		ops    = 300
		rounds = 3
	)
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(Config{
				Processes: procs, Variables: vars, Protocol: kind,
				MaxDelay: 500 * time.Microsecond, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(round*procs + p)))
						for i := 1; i <= ops; i++ {
							switch rng.Intn(3) {
							case 0:
								if err := c.Node(p).Write(rng.Intn(vars), int64(p)*1_000_000+int64(round*ops+i)); err != nil {
									t.Error(err)
									return
								}
							default:
								if _, err := c.Node(p).Read(rng.Intn(vars)); err != nil {
									t.Error(err)
									return
								}
							}
						}
					}()
				}
				wg.Wait()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err := c.Quiesce(ctx)
				cancel()
				if err != nil {
					t.Fatalf("round %d quiesce: %v", round, err)
				}
			}

			rep, err := c.Audit()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Safe() {
				t.Fatalf("safety: %d violations (first: %v)", len(rep.SafetyViolations), rep.SafetyViolations[0])
			}
			if !rep.CausallyConsistent() {
				t.Fatalf("legality: %d violations (first: %v)", len(rep.LegalityViolations), rep.LegalityViolations[0])
			}
			if !rep.InP() {
				t.Fatalf("liveness: %d holes", len(rep.NotApplied))
			}
			if kind == protocol.OptP && !rep.WriteDelayOptimal() {
				t.Fatalf("OptP unnecessary delays: %d", rep.UnnecessaryDelays)
			}
			if err := checker.SerializationAudit(c.Log(), rep); err != nil {
				t.Fatalf("serialization: %v", err)
			}
			t.Logf("%v soak: %s", kind, c.Stats())
		})
	}
}
