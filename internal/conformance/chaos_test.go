package conformance

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netchaos"
	"repro/internal/service"
)

// chaosHarness is a conformance harness whose server listener injects
// seeded connection faults: kills, stalls, truncations.
type chaosHarness struct {
	*Harness
	ln *netchaos.Listener
}

func newChaosHarness(t *testing.T, seed int64) *chaosHarness {
	t.Helper()
	ch := &chaosHarness{}
	chaos := netchaos.Config{
		Seed:      seed,
		KillProb:  0.01, // the ISSUE's 1% conn-kill chaos
		StallProb: 0.02,
		StallMax:  3 * time.Millisecond,
		TruncProb: 0.005,
	}
	ch.Harness = New(t,
		core.Config{
			Processes: 3, Variables: 4,
			MinDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: seed,
		},
		service.Config{
			WaitTimeout: 10 * time.Second,
			WrapListener: func(ln net.Listener) net.Listener {
				wrapped := netchaos.Wrap(ln, chaos)
				ch.ln = wrapped.(*netchaos.Listener)
				return wrapped
			},
		})
	return ch
}

// runChaosWorkload drives the standard chaos workload: four sessions,
// each the single writer of one variable, hopping replicas every round
// and reading both its own variable (read-your-writes) and its
// neighbour's (monotonic-reads), under injected connection faults.
// Every call must resolve without error: the fault-tolerant client owes
// the caller an answer, never a hang and never a leaked disconnect.
func runChaosWorkload(t *testing.T, h *chaosHarness, rounds int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const sessions = 4
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := h.Track(fmt.Sprintf("chaos-%d", i), h.Dial().Session())
			x := i // single writer per variable
			for round := int64(1); round <= rounds; round++ {
				p := (int(round) + i) % 3
				if err := s.Use(p).Write(ctx, x, round); err != nil {
					t.Errorf("chaos-%d write round %d: %v", i, round, err)
					return
				}
				if _, err := s.Use((p+1)%3).Read(ctx, x); err != nil {
					t.Errorf("chaos-%d self-read round %d: %v", i, round, err)
					return
				}
				if _, err := s.Use((p+2)%3).Read(ctx, (x+1)%sessions); err != nil {
					t.Errorf("chaos-%d cross-read round %d: %v", i, round, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// auditChaosRun checks everything the chaos run promises: a clean
// session-guarantee trace, zero duplicate writes in the trace, and —
// the sharp end — cluster-level exactly-once accounting: after
// quiesce, each replica's frontier component counts the writes it
// issued, so the frontier sum must equal the number of successful
// client writes exactly. A lost write undercounts; a replayed write
// that slipped past the dedup window overcounts.
func auditChaosRun(t *testing.T, h *chaosHarness) {
	t.Helper()
	h.MustCheck()
	ops := h.Ops()
	for _, d := range CheckDuplicateWrites(ops) {
		t.Errorf("conformance: %s", d)
	}
	writes := 0
	for _, op := range ops {
		if op.Kind == OpWrite && op.Err == nil {
			writes++
		}
	}
	qctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.Cluster.Quiesce(qctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	var applied uint64
	for _, c := range h.Cluster.Node(0).Frontier() {
		applied += c
	}
	if applied != uint64(writes) {
		t.Errorf("exactly-once accounting: cluster applied %d writes, clients completed %d", applied, writes)
	}
	st := h.ln.Stats()
	t.Logf("chaos: kills=%d accept-kills=%d stalls=%d truncs=%d; ops=%d writes=%d",
		st.Kills, st.AcceptKills, st.Stalls, st.Truncs, len(ops), writes)
	if st.Kills+st.AcceptKills+st.Stalls+st.Truncs == 0 {
		t.Error("chaos injected zero faults; the run proved nothing — raise probabilities or rounds")
	}
}

// TestChaosConformance is the fault-injection conformance gate: three
// seeds of connection chaos, and under every one the session
// guarantees hold, every call resolves, and every write applies
// exactly once.
func TestChaosConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos conformance is not a -short test")
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h := newChaosHarness(t, seed)
			runChaosWorkload(t, h, 25)
			auditChaosRun(t, h)
		})
	}
}
