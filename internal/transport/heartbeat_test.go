package transport

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHeartbeatConfigValidate(t *testing.T) {
	bad := []HeartbeatConfig{
		{Procs: 0, Interval: time.Millisecond},
		{Procs: 2, Interval: 0},
		{Procs: 2, Interval: -time.Millisecond},
		{Procs: 2, Interval: time.Millisecond, SuspectAfter: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewDetector(nil, HeartbeatConfig{Procs: 0, Interval: time.Millisecond}, nil); err == nil {
		t.Error("NewDetector accepted a bad config")
	}
}

// TestDetectorSuspectAndRecover runs a detector over a real Net: a
// process marked down goes silent, every live observer suspects it
// (EvSuspect), and marking it up again clears the suspicion on the
// next heartbeat (EvAlive).
func TestDetectorSuspectAndRecover(t *testing.T) {
	const procs = 3
	net, err := New(Config{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	var mu sync.Mutex
	var events []NetEvent
	det, err := NewDetector(net, HeartbeatConfig{
		Procs:        procs,
		Interval:     time.Millisecond,
		SuspectAfter: 4 * time.Millisecond,
	}, func(e NetEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	// Route heartbeats to the detector like the engine does.
	for p := 0; p < procs; p++ {
		p := p
		net.Register(p, func(m Message) {
			if m.Heartbeat {
				det.Heard(p, m.From)
			}
		})
	}
	det.Start()

	count := func(k NetEventKind, peer int) int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, e := range events {
			if e.Kind == k && e.From == peer {
				n++
			}
		}
		return n
	}
	waitFor := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	// Everyone is probing: no suspicions in steady state.
	waitFor("steady probing", func() bool { return det.Up(0) && det.Up(1) && det.Up(2) })
	if n := count(EvSuspect, 1); n != 0 {
		t.Fatalf("%d premature suspicions", n)
	}

	det.SetDown(1, true)
	waitFor("suspicion of p2", func() bool {
		return !det.Up(1) && count(EvSuspect, 1) >= 1
	})
	// Both live observers eventually suspect the silent peer.
	waitFor("both observers", func() bool {
		got := append(det.Suspects(0), det.Suspects(2)...)
		return len(got) == 2 && got[0] == 1 && got[1] == 1
	})
	// A down process accuses nobody.
	if s := det.Suspects(1); len(s) != 0 {
		t.Fatalf("down observer suspects %v", s)
	}

	det.SetDown(1, false)
	waitFor("p2 trusted again", func() bool {
		return det.Up(1) && count(EvAlive, 1) >= 1
	})

	// Close is idempotent.
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHeartbeatBypassesReliable: heartbeat frames must flow through the
// reliability sublayer without sequence numbers, acks, retransmission
// or dedup — every probe sent is delivered exactly once, and the resend
// buffers stay empty.
func TestHeartbeatBypassesReliable(t *testing.T) {
	r, err := NewFaulty(Config{Procs: 2}, ChaosConfig{}, ReliableConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var mu sync.Mutex
	beats := 0
	r.Register(0, func(m Message) {})
	r.Register(1, func(m Message) {
		mu.Lock()
		if m.Heartbeat {
			beats++
		}
		mu.Unlock()
	})
	const sent = 20
	for i := 0; i < sent; i++ {
		r.Send(Message{From: 0, To: 1, Heartbeat: true})
	}
	r.Flush()
	mu.Lock()
	got := beats
	mu.Unlock()
	if got != sent {
		t.Fatalf("delivered %d of %d heartbeats", got, sent)
	}
	if u := r.Unacked(); u != 0 {
		t.Fatalf("%d heartbeats buffered for retransmission", u)
	}
}

// TestNetEventKindStringExhaustive mirrors the trace-side test: every
// kind up to the sentinel must have a name.
func TestNetEventKindStringExhaustive(t *testing.T) {
	want := map[NetEventKind]string{
		EvDrop: "net-drop", EvDuplicate: "net-dup", EvRetransmit: "retransmit",
		EvDupDiscard: "dup-discard", EvSuspect: "suspect", EvAlive: "alive",
	}
	if len(want) != int(numNetEventKinds) {
		t.Fatalf("test table has %d kinds, sentinel says %d", len(want), int(numNetEventKinds))
	}
	for k := NetEventKind(0); k < numNetEventKinds; k++ {
		got := k.String()
		if got != want[k] {
			t.Errorf("kind %d = %q, want %q", int(k), got, want[k])
		}
		if strings.Contains(got, "NetEventKind(") {
			t.Errorf("kind %d has no name entry", int(k))
		}
	}
	if got := NetEventKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %q", got)
	}
}
