package protocol

import "fmt"

// ShareSets is a replication assignment: for each variable, the set of
// processes that replicate it. It is the static configuration the
// PartialRep protocol (Xiang & Vaidya, arXiv:1703.05424) runs against —
// a write to x is multicast only to shareSet(x), and only those
// processes ever store x.
//
// The zero value means "unset"; engines treat it as full replication.
// A constructed ShareSets is immutable and safe for concurrent reads.
type ShareSets struct {
	n      int     // process count
	sets   [][]int // per variable, sorted ascending
	member []bool  // var*n + proc → replicates?
	local  [][]int // per process, the variables it replicates
}

// NewShareSets validates and indexes a raw assignment: sets[x] lists
// the processes replicating variable x. Every variable needs at least
// one replica; entries must be in-range and duplicate-free.
func NewShareSets(sets [][]int, procs int) (ShareSets, error) {
	if procs <= 0 {
		return ShareSets{}, fmt.Errorf("protocol: share-sets need a positive process count, got %d", procs)
	}
	s := ShareSets{
		n:      procs,
		sets:   make([][]int, len(sets)),
		member: make([]bool, len(sets)*procs),
		local:  make([][]int, procs),
	}
	for x, set := range sets {
		if len(set) == 0 {
			return ShareSets{}, fmt.Errorf("protocol: variable x%d has an empty share-set", x+1)
		}
		own := make([]int, 0, len(set))
		for _, p := range set {
			if p < 0 || p >= procs {
				return ShareSets{}, fmt.Errorf("protocol: share-set of x%d names process %d (have %d)", x+1, p, procs)
			}
			if s.member[x*procs+p] {
				return ShareSets{}, fmt.Errorf("protocol: share-set of x%d lists process %d twice", x+1, p)
			}
			s.member[x*procs+p] = true
			own = append(own, p)
		}
		// Sorted order makes the server choice and wire layout
		// deterministic regardless of how the config spelled the set.
		for i := 1; i < len(own); i++ {
			for j := i; j > 0 && own[j] < own[j-1]; j-- {
				own[j], own[j-1] = own[j-1], own[j]
			}
		}
		s.sets[x] = own
	}
	for x := range s.sets {
		for _, p := range s.sets[x] {
			s.local[p] = append(s.local[p], x)
		}
	}
	return s, nil
}

// Modulo builds the round-robin default: variable x is replicated at
// processes (x+i) mod procs for i in [0, r). r is clamped to [1, procs].
func Modulo(vars, procs, r int) ShareSets {
	if r < 1 {
		r = 1
	}
	if r > procs {
		r = procs
	}
	sets := make([][]int, vars)
	for x := range sets {
		set := make([]int, r)
		for i := range set {
			set[i] = (x + i) % procs
		}
		sets[x] = set
	}
	s, err := NewShareSets(sets, procs)
	if err != nil {
		panic(err) // construction above cannot violate the invariants
	}
	return s
}

// Full is the degenerate assignment replicating everything everywhere —
// PartialRep under Full behaves like a broadcast protocol.
func Full(vars, procs int) ShareSets { return Modulo(vars, procs, procs) }

// IsZero reports an unset assignment (the zero value).
func (s ShareSets) IsZero() bool { return s.n == 0 }

// NumProcs returns the process count the assignment was built for.
func (s ShareSets) NumProcs() int { return s.n }

// NumVars returns the number of variables assigned.
func (s ShareSets) NumVars() int { return len(s.sets) }

// Replicates reports whether process p replicates variable x. An unset
// assignment replicates everything everywhere.
func (s ShareSets) Replicates(p, x int) bool {
	if s.n == 0 {
		return true
	}
	return s.member[x*s.n+p]
}

// Replicas returns the processes replicating x, sorted ascending. The
// slice is shared — callers must not mutate it.
func (s ShareSets) Replicas(x int) []int { return s.sets[x] }

// LocalVars returns the variables process p replicates, sorted
// ascending. The slice is shared — callers must not mutate it.
func (s ShareSets) LocalVars(p int) []int { return s.local[p] }

// Server picks the replica that serves process p's remote reads of x:
// deterministic (so retries and the simulator agree) and spread across
// the share-set by requester to avoid a single hot server.
func (s ShareSets) Server(p, x int) int {
	set := s.sets[x]
	return set[p%len(set)]
}

// IsFull reports whether every process replicates every variable, in
// which case PartialRep degenerates to broadcast and needs no read
// forwarding. The zero value counts as full.
func (s ShareSets) IsFull() bool {
	for _, b := range s.member {
		if !b {
			return false
		}
	}
	return true
}

// Raw returns a deep copy of the per-variable sets, for configs and
// trace logs that must not alias the indexed form.
func (s ShareSets) Raw() [][]int {
	if s.n == 0 {
		return nil
	}
	out := make([][]int, len(s.sets))
	for x := range s.sets {
		out[x] = append([]int(nil), s.sets[x]...)
	}
	return out
}
