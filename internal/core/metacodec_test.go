package core

import (
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// metaSeeds trims the live codec property test in -short mode so the
// race job stays fast.
func metaSeeds() int64 {
	if testing.Short() {
		return 2
	}
	return 6
}

// TestMetaCodecChaosEquivalence is the live half of the codec's
// correctness contract: with the codec recoding every link under
// message loss and duplication, every protocol must still quiesce and
// pass the full audit — the codec must be invisible to the protocol
// layer. (The simulator's test asserts exact event equality; a live
// cluster is scheduled by the Go runtime, so here the invariant is the
// audit verdict.)
func TestMetaCodecChaosEquivalence(t *testing.T) {
	const procs, vars, ops = 3, 3, 25
	for _, kind := range protocol.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			modes := []protocol.MetaMode{protocol.MetaAuto}
			if kind == protocol.OptP && !testing.Short() {
				modes = []protocol.MetaMode{protocol.MetaDelta, protocol.MetaStab, protocol.MetaAuto}
			}
			for _, mode := range modes {
				for seed := int64(1); seed <= metaSeeds(); seed++ {
					c, err := NewCluster(Config{
						Processes: procs, Variables: vars, Protocol: kind,
						Meta:     mode,
						MaxDelay: 200 * time.Microsecond, Seed: seed,
						Chaos: transport.ChaosConfig{
							LossRate: 0.2, DupRate: 0.1, Seed: seed * 31,
						},
						RetransmitTimeout: 300 * time.Microsecond,
						TokenInterval:     200 * time.Microsecond,
					})
					if err != nil {
						t.Fatal(err)
					}
					if c.MetaCodec() == nil {
						t.Fatal("MetaCodec() nil with codec enabled")
					}
					runChaosWorkload(t, c, seed, procs, vars, ops)

					rep, err := c.Audit()
					if err != nil {
						t.Fatalf("%v seed %d: %v", mode, seed, err)
					}
					if !rep.Safe() || !rep.CausallyConsistent() || !rep.ExactlyOnce() {
						t.Fatalf("%v seed %d: audit not clean: %v", mode, seed, rep)
					}
					st := c.MetaCodec().Stats()
					if st.Frames == 0 || st.MetaBytes == 0 {
						t.Fatalf("%v seed %d: codec idle: %+v", mode, seed, st)
					}
					if err := c.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestMetaCodecFaultFree pins the steady-state size win on a live
// fault-free cluster: OptP under MetaDelta must ship well under half
// the clock bytes of the same run with the accounting-only MetaOff
// wrapper. The process count is high enough that the O(P) dense clock
// dominates — the regime the codec exists for.
func TestMetaCodecFaultFree(t *testing.T) {
	const procs, vars, ops = 16, 8, 40
	run := func(mode protocol.MetaMode) transport.CodecStats {
		t.Helper()
		inner, err := transport.New(transport.Config{Procs: procs, FIFO: true})
		if err != nil {
			t.Fatal(err)
		}
		codec := transport.WithCodec(inner, procs, mode)
		c, err := NewCluster(Config{
			Processes: procs, Variables: vars,
			Transport: codec,
		})
		if err != nil {
			t.Fatal(err)
		}
		runChaosWorkload(t, c, 5, procs, vars, ops)
		rep, err := c.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe() || !rep.CausallyConsistent() {
			t.Fatalf("mode %v: audit not clean: %v", mode, rep)
		}
		st := codec.Stats()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	off := run(protocol.MetaOff)
	delta := run(protocol.MetaDelta)
	if delta.MetaBytes*2 >= off.MetaBytes {
		t.Fatalf("delta meta bytes %d not < half of off %d", delta.MetaBytes, off.MetaBytes)
	}
}

// TestMetaCodecTCP drives a live cluster over real loopback sockets
// with the codec framing the wire, end to end.
func TestMetaCodecTCP(t *testing.T) {
	const procs, vars, ops = 3, 3, 25
	tn, err := transport.NewTCPMeta(procs, protocol.MetaAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Processes: procs, Variables: vars,
		Transport: tn,
	})
	if err != nil {
		t.Fatal(err)
	}
	runChaosWorkload(t, c, 9, procs, vars, ops)
	rep, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.ExactlyOnce() {
		t.Fatalf("audit not clean: %v", rep)
	}
	if st := tn.Stats(); st.Frames == 0 || st.MetaBytes == 0 {
		t.Fatalf("tcp codec idle: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaConfigValidation(t *testing.T) {
	_, err := NewCluster(Config{Processes: 2, Variables: 1, Meta: protocol.MetaMode(7)})
	if err == nil {
		t.Fatal("accepted invalid Meta mode")
	}
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.MetaCodec() != nil {
		t.Fatal("MetaCodec() non-nil with codec off")
	}
	c.Close()
}
