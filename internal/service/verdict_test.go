package service_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
)

// Batching and coalescing are server-side plumbing: the cluster's
// audited history must come out causally consistent either way. This
// property runs the same concurrent session workload through an
// unbatched server (MaxBatch 1: every write is its own cluster op) and
// a batched+coalescing one, across protocol kinds and seeds, and
// demands the checker's verdict be identical — consistent — for both.
func TestBatchedVerdictMatchesUnbatched(t *testing.T) {
	kinds := []protocol.Kind{
		protocol.OptP, protocol.ANBKH, protocol.WSRecv,
		protocol.OptPNoReadMerge, protocol.OptPWS,
	}
	for _, kind := range kinds {
		for _, seed := range []int64{1, 42} {
			for _, batched := range []bool{false, true} {
				name := fmt.Sprintf("%v/seed=%d/batched=%v", kind, seed, batched)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runVerdictWorkload(t, kind, seed, batched)
				})
			}
		}
	}
}

func runVerdictWorkload(t *testing.T, kind protocol.Kind, seed int64, batched bool) {
	scfg := service.Config{MaxBatch: 1}
	if batched {
		scfg = service.Config{MaxBatch: 64, BatchWindow: 300 * time.Microsecond}
	}
	srv, cl := startServer(t, core.Config{
		Processes: 3, Variables: 4, Protocol: kind,
		MinDelay: 500 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Seed: seed,
	}, scfg)
	c := dial(t, srv)
	ctx := context.Background()

	const sessions, rounds = 4, 12
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := c.Session()
			x := i % 4 // single writer per variable
			for r := 1; r <= rounds; r++ {
				if err := s.Write(ctx, x, int64(i*1000+r)); err != nil {
					t.Errorf("session %d write: %v", i, err)
					return
				}
				if r%3 == 0 {
					if _, err := s.Read(ctx, (x+1)%4); err != nil {
						t.Errorf("session %d read: %v", i, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	qctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	rep, err := cl.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() {
		t.Fatalf("audit verdict safe=%v consistent=%v; batching must not change the checker's verdict\n%s",
			rep.Safe(), rep.CausallyConsistent(), rep)
	}
}

// Writes against a crash-stopped replica fail rather than report OK
// for an operation the cluster never saw, and the session recovers
// cleanly once the replica restarts from its WAL.
func TestWriteToCrashedReplicaFails(t *testing.T) {
	srv, cl := startServer(t,
		core.Config{Processes: 2, Variables: 2, WALDir: t.TempDir()},
		service.Config{},
	)
	c := dial(t, srv)
	ctx := context.Background()
	s := c.Session().Use(0)
	if err := s.Write(ctx, 0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := cl.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := s.Write(ctx, 0, 2); err == nil {
		t.Fatal("write to crashed replica succeeded")
	}
	if _, err := cl.Restart(0); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := s.Write(ctx, 0, 3); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	v, err := s.Read(ctx, 0)
	if err != nil || v != 3 {
		t.Fatalf("read after restart = %d, %v; want 3", v, err)
	}
}
