// Package conformance is the session-guarantee conformance suite of
// the serving tier: it drives real client connections against a real
// dsmd-style server (internal/service over a core.Cluster), records
// every session operation, and checks the trace against the two
// guarantees the session tokens promise — read-your-writes and
// monotonic-reads (Terry et al.'s session guarantees, the client-side
// face of causal consistency).
//
// The check leans on a workload discipline the harness enforces: each
// variable has a single writer session, and that writer's values are
// strictly increasing. Staleness is then decidable per read — a read
// of variable x returning v is older than a read returning v' iff
// v < v' — so the suite can state the guarantees exactly:
//
//   - read-your-writes: a session's read of x never returns less than
//     the last value the session itself wrote to x;
//   - monotonic-reads: a session's read of x never returns less than
//     any earlier read of x by the same session.
//
// The suite must also catch the absence of the mechanism: a session
// in no-token mode (client.NoTokenSession) carries no causal past, and
// on a cluster with real propagation delay the checker is expected to
// report violations for it. A conformance suite that cannot detect
// the deliberately-broken mode proves nothing about the working one.
package conformance

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/service"
)

// OpKind classifies a recorded session operation.
type OpKind uint8

const (
	// OpWrite records Session.Write.
	OpWrite OpKind = iota
	// OpRead records Session.Read.
	OpRead
)

// Op is one recorded session operation, in the session's issue order.
type Op struct {
	// Session names the session that issued the operation.
	Session string
	// Seq is the operation's global record order (per harness).
	Seq int
	// Kind, Var, Val describe the operation; Val is the value written
	// or the value the read returned.
	Kind OpKind
	Var  int
	Val  int64
	// Err is the operation's error, if any. Failed operations are
	// recorded but exempt from the guarantees (they returned nothing).
	Err error
}

// Violation is one session-guarantee breach.
type Violation struct {
	// Guarantee is "read-your-writes" or "monotonic-reads".
	Guarantee string
	// Session is the violated session; Var the variable.
	Session string
	Var     int
	// Got is the stale value read; Floor the newest value the session
	// was already entitled to (own write or earlier read).
	Got, Floor int64
	// Seq is the violating read's record order.
	Seq int
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: session %s read x%d=%d after observing %d (op %d)",
		v.Guarantee, v.Session, v.Var, v.Got, v.Floor, v.Seq)
}

// Check audits a recorded operation trace for session-guarantee
// violations. It assumes the harness's workload discipline (per-var
// single writer, strictly increasing values).
func Check(ops []Op) []Violation {
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	type key struct {
		session string
		v       int
	}
	lastWrite := map[key]int64{} // newest value the session wrote to var
	lastRead := map[key]int64{}  // newest value the session read from var
	var out []Violation
	for _, op := range sorted {
		if op.Err != nil {
			continue
		}
		k := key{op.Session, op.Var}
		switch op.Kind {
		case OpWrite:
			if op.Val > lastWrite[k] {
				lastWrite[k] = op.Val
			}
		case OpRead:
			if floor, ok := lastWrite[k]; ok && op.Val < floor {
				out = append(out, Violation{
					Guarantee: "read-your-writes", Session: op.Session,
					Var: op.Var, Got: op.Val, Floor: floor, Seq: op.Seq,
				})
			}
			if floor, ok := lastRead[k]; ok && op.Val < floor {
				out = append(out, Violation{
					Guarantee: "monotonic-reads", Session: op.Session,
					Var: op.Var, Got: op.Val, Floor: floor, Seq: op.Seq,
				})
			}
			if op.Val > lastRead[k] {
				lastRead[k] = op.Val
			}
		}
	}
	return out
}

// DuplicateWrite is one write the trace shows applied (or surfaced)
// more than once.
type DuplicateWrite struct {
	// Session, Var, Val identify the duplicated write.
	Session string
	Var     int
	Val     int64
	// Seqs are the record orders of every occurrence.
	Seqs []int
}

func (d DuplicateWrite) String() string {
	return fmt.Sprintf("duplicate write: session %s wrote x%d=%d %d times (ops %v)",
		d.Session, d.Var, d.Val, len(d.Seqs), d.Seqs)
}

// CheckDuplicateWrites audits the trace for writes that completed
// successfully more than once. Under the workload discipline (single
// writer per variable, strictly increasing values) every successful
// (session, var, val) triple is unique; a repeat means a retry leaked
// through the exactly-once window as a second completion.
func CheckDuplicateWrites(ops []Op) []DuplicateWrite {
	type key struct {
		session string
		v       int
		val     int64
	}
	seqs := map[key][]int{}
	for _, op := range ops {
		if op.Kind != OpWrite || op.Err != nil {
			continue
		}
		k := key{op.Session, op.Var, op.Val}
		seqs[k] = append(seqs[k], op.Seq)
	}
	var out []DuplicateWrite
	for k, s := range seqs {
		if len(s) > 1 {
			sort.Ints(s)
			out = append(out, DuplicateWrite{Session: k.session, Var: k.v, Val: k.val, Seqs: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seqs[0] < out[j].Seqs[0] })
	return out
}

// Harness runs one cluster + server and records every tracked session
// operation for Check.
type Harness struct {
	T       *testing.T
	Cluster *core.Cluster
	Server  *service.Server

	mu  sync.Mutex
	seq int
	ops []Op
}

// New builds a cluster and a server over it; teardown is wired into t.
func New(t *testing.T, ccfg core.Config, scfg service.Config) *Harness {
	t.Helper()
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("conformance: NewCluster: %v", err)
	}
	scfg.Cluster = cl
	srv, err := service.New(scfg)
	if err != nil {
		cl.Close()
		t.Fatalf("conformance: service.New: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Close()
	})
	return &Harness{T: t, Cluster: cl, Server: srv}
}

// Dial opens a client connection to the harness server.
func (h *Harness) Dial() *client.Client {
	h.T.Helper()
	c, err := client.Dial(h.Server.Addr())
	if err != nil {
		h.T.Fatalf("conformance: Dial: %v", err)
	}
	h.T.Cleanup(func() { c.Close() })
	return c
}

// record appends one operation to the trace.
func (h *Harness) record(op Op) {
	h.mu.Lock()
	op.Seq = h.seq
	h.seq++
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

// Ops snapshots the recorded trace.
func (h *Harness) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Track wraps a session so its operations land in the harness trace.
func (h *Harness) Track(name string, s *client.Session) *TrackedSession {
	return &TrackedSession{h: h, name: name, s: s}
}

// TrackedSession records a session's operations for Check. Methods
// mirror client.Session.
type TrackedSession struct {
	h    *Harness
	name string
	s    *client.Session
}

// Use pins the underlying session to replica p.
func (ts *TrackedSession) Use(p int) *TrackedSession {
	ts.s.Use(p)
	return ts
}

// Session exposes the wrapped session (for Token/Resume).
func (ts *TrackedSession) Session() *client.Session { return ts.s }

// Write records a tracked write.
func (ts *TrackedSession) Write(ctx context.Context, x int, v int64) error {
	err := ts.s.Write(ctx, x, v)
	ts.h.record(Op{Session: ts.name, Kind: OpWrite, Var: x, Val: v, Err: err})
	return err
}

// Read records a tracked read.
func (ts *TrackedSession) Read(ctx context.Context, x int) (int64, error) {
	v, err := ts.s.Read(ctx, x)
	ts.h.record(Op{Session: ts.name, Kind: OpRead, Var: x, Val: v, Err: err})
	return v, err
}

// MustCheck fails the test on any violation in the recorded trace.
func (h *Harness) MustCheck() {
	h.T.Helper()
	if vs := Check(h.Ops()); len(vs) > 0 {
		for _, v := range vs {
			h.T.Errorf("conformance: %s", v)
		}
	}
}
