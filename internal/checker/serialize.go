package checker

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/trace"
)

// SerializationAudit verifies the Ahamad et al. serialization
// definition of causal consistency against a run, in linear time per
// process: the candidate serialization of p_i's view is exactly the
// order the replica materialized it — writes at their (logical) apply
// positions, reads at their return positions.
//
// For protocols in 𝒫 the candidate must cover the full view (all
// writes + p_i's reads). Writing-semantics protocols legitimately omit
// writes at processes that never received them (WS-send suppression);
// those omissions are liveness holes already reported by Audit via
// NotApplied, and here the serialization condition is checked over the
// sub-view the process actually materialized.
//
// This is strictly stronger than the Definition 2 legality check (see
// internal/history/serialize.go for the definitional gap); every
// correct protocol run passes.
func SerializationAudit(log *trace.Log, rep *Report) error {
	h := rep.History
	requireFull := rep.InP()

	// Global index of each read: the k-th Return of p is p's k-th read
	// in the reconstructed history.
	readIdx := make([][]int, log.NumProcs)
	base := 0
	for p := 0; p < log.NumProcs; p++ {
		for i, o := range h.Locals[p] {
			if o.IsRead() {
				readIdx[p] = append(readIdx[p], base+i)
			}
		}
		base += len(h.Locals[p])
	}

	for p := 0; p < log.NumProcs; p++ {
		var order []int
		reads := 0
		for _, e := range log.Events {
			if e.Proc != p {
				continue
			}
			switch e.Kind {
			case trace.Issue, trace.Apply, trace.Discard:
				gi := h.WriteIndex(e.Write)
				if gi < 0 {
					return fmt.Errorf("checker: p%d applied unknown write %v", p+1, e.Write)
				}
				order = append(order, gi)
			case trace.Return:
				if reads >= len(readIdx[p]) {
					return fmt.Errorf("checker: p%d has more returns than reads", p+1)
				}
				order = append(order, readIdx[p][reads])
				reads++
			}
		}
		if err := verifyViewSerialization(rep, p, order, requireFull); err != nil {
			return fmt.Errorf("checker: p%d view not a causal serialization: %w", p+1, err)
		}
	}
	return nil
}

// verifyViewSerialization checks that order is a causal serialization
// of the sub-view it covers: no duplicates, all of p's reads included,
// →co respected among members, every read returning the latest
// preceding write. With requireFull it additionally demands every write
// of the history be present (the 𝒫 case — then it is exactly
// Causality.VerifySerialization's condition).
func verifyViewSerialization(rep *Report, p int, order []int, requireFull bool) error {
	h := rep.History
	c := rep.Causality

	placed := make(map[int]int, len(order))
	lastWrite := make([]history.WriteID, h.NumVars)
	readsSeen := 0
	for pos, gi := range order {
		if _, dup := placed[gi]; dup {
			return fmt.Errorf("op %v placed twice", h.Ops()[gi])
		}
		placed[gi] = pos
		o := h.Ops()[gi]
		switch {
		case o.IsRead():
			if o.Proc != p {
				return fmt.Errorf("foreign read %v in p%d's view", o, p+1)
			}
			readsSeen++
			if lastWrite[o.Var] != o.From {
				return fmt.Errorf("at position %d, %v reads %v but latest write is %v",
					pos, o, o.From, lastWrite[o.Var])
			}
		default:
			lastWrite[o.Var] = o.ID
		}
	}
	// Coverage: all of p's reads, and (for 𝒫) all writes.
	wantReads := 0
	for _, o := range h.Locals[p] {
		if o.IsRead() {
			wantReads++
		}
	}
	if readsSeen != wantReads {
		return fmt.Errorf("view has %d of p%d's %d reads", readsSeen, p+1, wantReads)
	}
	if requireFull {
		for _, gi := range h.Writes() {
			if _, ok := placed[gi]; !ok {
				return fmt.Errorf("write %v missing from p%d's view", h.Ops()[gi], p+1)
			}
		}
	}
	// →co among placed members.
	members := make([]int, 0, len(placed))
	for gi := range placed {
		members = append(members, gi)
	}
	for _, gi := range members {
		for _, gj := range members {
			if c.Before(gi, gj) && placed[gi] > placed[gj] {
				return fmt.Errorf("order violates →co: %v before %v", h.Ops()[gi], h.Ops()[gj])
			}
		}
	}
	return nil
}
