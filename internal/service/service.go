// Package service is the serving tier of the repository: a long-running
// TCP front end (cmd/dsmd) over a core.Cluster, speaking the tagged
// request/response wire protocol of internal/protocol with per-session
// causal tokens.
//
// The shape follows the Bayou/PNUTS serving-tier exemplars: the causal
// store is replicated among the cluster's processes, and an arbitrary
// number of stateless clients connect to the front end, each carrying
// its session's causal knowledge in a compact token instead of a
// replica. A session token is a vclock frontier — component j counts
// the writes of process j the session has observed — and the server
// enforces two session guarantees with one rule: an operation carrying
// token t is admitted at replica p only once p's applied frontier
// dominates t. Reads therefore see everything the session wrote
// (read-your-writes) and everything previous reads saw
// (monotonic-reads), across arbitrary replica switches; writes are
// issued on a replica that already holds the session's past. Each
// response returns the token advanced to max(t, frontier), so the
// guarantee is transitive and tokens can be handed between clients to
// carry causal dependencies.
//
// Connections are multiplexed and pipelined: requests carry tags,
// each is served concurrently, and responses complete out of order (a
// read blocked on a lagging frontier never stalls the pings behind
// it). Writes funnel through a per-replica batching pump that
// coalesces adjacent same-connection overwrites and amortizes one
// frontier snapshot per batch — the network-side entrance to the PR 4
// hot path.
package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// Errors returned by server lifecycle operations.
var (
	// ErrServerClosed reports an operation on a closed/draining server.
	ErrServerClosed = errors.New("service: server closed")
)

// maxFrame bounds an inbound request frame. Requests are tens of
// bytes; anything near the bound is a corrupt or hostile stream.
const maxFrame = 1 << 16

// maxDedupSessions caps how many sessions the exactly-once window
// tracks; beyond it, idle sessions are evicted LRU.
const maxDedupSessions = 4096

// Config parameterizes a Server.
type Config struct {
	// Cluster is the replicated store the server fronts. Required; the
	// server does not close it. WSSend clusters are rejected: their
	// sender-suppressed writes make apply frontiers non-convergent, so
	// token admission could block forever (see
	// protocol.FrontierDominator).
	Cluster *core.Cluster

	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string

	// WaitTimeout bounds a single request's frontier wait; a session
	// token the serving replica cannot reach within it yields
	// StatusUnavailable. 0 defaults to 5s.
	WaitTimeout time.Duration

	// BatchWindow is the write pump's linger: after the first write of
	// a batch arrives the pump collects more for up to this long before
	// issuing. 0 means no linger — the pump still batches whatever has
	// queued while it was busy.
	BatchWindow time.Duration

	// MaxBatch caps writes per pump batch. 0 defaults to 64; 1
	// disables batching and coalescing.
	MaxBatch int

	// MaxPipeline caps a connection's concurrently-served requests;
	// further frames queue in the socket. 0 defaults to 256.
	MaxPipeline int

	// MaxInflight is the load-shedding watermark: when this many
	// requests are in flight across all connections, further requests
	// are fast-rejected with StatusOverloaded instead of queued. 0
	// defaults to 4096.
	MaxInflight int

	// MaxQueue caps each replica's write-pump admission queue; a write
	// arriving at a full queue is fast-rejected with StatusOverloaded
	// instead of blocking the connection's pipeline slot. 0 defaults to
	// 4096.
	MaxQueue int

	// DedupWindow is the per-session exactly-once window: how many op
	// sequence numbers of applied writes the server remembers per
	// session so a retried write applies once. It must comfortably
	// exceed the client pipeline depth. 0 defaults to 512.
	DedupWindow int

	// WrapListener, when set, wraps the TCP listener before serving —
	// the seam the netchaos fault injector plugs into.
	WrapListener func(net.Listener) net.Listener

	// Metrics, when set, receives the per-connection/session serving
	// metrics (dsm_svc_*) on the shared registry, including the per-stage
	// request-latency histograms (dsm_svc_stage_ns{stage=...}).
	Metrics *obs.Registry

	// TraceThreshold is the tail-sampling latency bound: a request whose
	// end-to-end server time reaches it retains its full stage timeline
	// (so do non-OK requests and requests force-sampled by the wire's
	// trace context). 0 defaults to 20ms; negative disables latency-based
	// sampling.
	TraceThreshold time.Duration

	// TraceRing bounds the in-memory ring of retained trace records
	// (overwrite-oldest). 0 defaults to 1024.
	TraceRing int

	// TraceSink, when set, receives every tail-sampled trace record —
	// typically a reqtrace.SinkWriter streaming JSONL for cmd/dsmtrace.
	// It must not block.
	TraceSink func(reqtrace.Record)
}

// withDefaults returns cfg with zero values resolved.
func (cfg Config) withDefaults() Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 5 * time.Second
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxPipeline == 0 {
		cfg.MaxPipeline = 256
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 4096
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4096
	}
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = 512
	}
	return cfg
}

// Server fronts a cluster on one TCP listener.
type Server struct {
	cfg     Config
	procs   int
	vars    int
	ln      net.Listener
	pumps   []*pump
	met     *metrics
	trace   *reqtrace.Recorder
	dedup   *dedupTable
	gate    drainGate
	next    atomic.Uint64 // round-robin replica cursor
	closed  atomic.Bool
	aborted atomic.Bool // Close (vs Shutdown): abort in-flight waits
	abortCh chan struct{}
	abortOn sync.Once

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup
}

// New starts a server for cfg.Cluster on cfg.Addr.
func New(cfg Config) (*Server, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("service: Config.Cluster is required")
	}
	if cfg.Cluster.Protocol() == protocol.WSSend {
		return nil, fmt.Errorf("service: %v clusters are not servable: suppressed writes keep apply frontiers from converging, so session tokens could block forever", protocol.WSSend)
	}
	if cfg.Cluster.PartiallyReplicated() {
		return nil, fmt.Errorf("service: partially replicated clusters are not servable: a session may read any variable at any replica, and the serving tier's frontier waits assume every replica applies every write")
	}
	if cfg.WaitTimeout < 0 || cfg.BatchWindow < 0 || cfg.MaxBatch < 0 || cfg.MaxPipeline < 0 ||
		cfg.MaxInflight < 0 || cfg.MaxQueue < 0 || cfg.DedupWindow < 0 || cfg.TraceRing < 0 {
		return nil, fmt.Errorf("service: negative tuning parameter")
	}
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", cfg.Addr, err)
	}
	if cfg.WrapListener != nil {
		ln = cfg.WrapListener(ln)
	}
	s := &Server{
		cfg:     cfg,
		procs:   cfg.Cluster.Processes(),
		vars:    cfg.Cluster.Variables(),
		ln:      ln,
		met:     newMetrics(cfg.Metrics, cfg.Cluster.Protocol().String()),
		trace: reqtrace.NewRecorder(reqtrace.Config{
			Registry:  cfg.Metrics,
			Origin:    "server",
			Labels:    []obs.Label{obs.L("protocol", cfg.Cluster.Protocol().String())},
			Threshold: cfg.TraceThreshold,
			Capacity:  cfg.TraceRing,
			Sink:      cfg.TraceSink,
		}),
		dedup:   newDedupTable(cfg.DedupWindow, maxDedupSessions),
		abortCh: make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
	}
	s.pumps = make([]*pump, s.procs)
	for p := range s.pumps {
		s.pumps[p] = newPump(s, p)
	}
	s.connWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Trace returns the server's request-trace recorder: the always-on
// per-stage histograms plus the ring of tail-sampled request timelines.
func (s *Server) Trace() *reqtrace.Recorder { return s.trace }

// Shutdown gracefully stops the server: the listener closes, requests
// already being served run to completion (each bounded by WaitTimeout)
// and their responses are flushed, later frames on open connections
// are answered with StatusShutdown, and finally every connection is
// closed. It returns ctx's error if the drain outlives it; the
// teardown still completes. Shutdown of an already-stopped server
// returns ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return ErrServerClosed
	}
	s.ln.Close()
	var err error
	select {
	case <-s.gate.drain():
	case <-ctx.Done():
		err = fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
	for _, p := range s.pumps {
		p.stop()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// Close stops the server immediately: like Shutdown with an expired
// context, except in-flight frontier waits are also aborted (they
// return StatusShutdown instead of running out their WaitTimeout).
func (s *Server) Close() error {
	s.aborted.Store(true)
	s.abortOn.Do(func() { close(s.abortCh) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, ErrServerClosed) {
		return err
	}
	return nil
}

// acceptLoop serves inbound connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.met.connsOpen.Add(1)
		s.met.connsTotal.Inc()
		go s.serveConn(conn)
	}
}

// dropConn unregisters and closes one connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.met.connsOpen.Add(-1)
}

// srvConn is the response side of one connection: sends are serialized
// by wmu, so concurrently-completing requests interleave whole frames.
type srvConn struct {
	s    *Server
	conn net.Conn
	wmu  sync.Mutex
}

// send frames and writes one response, delta-encoding its token
// against base (the request's token). Write errors are dropped: a dead
// peer surfaces in the read loop.
func (c *srvConn) send(r protocol.Response, base vclock.VC) {
	payload := r.AppendBinary(make([]byte, 0, 64), base)
	frame := binary.AppendUvarint(make([]byte, 0, len(payload)+4), uint64(len(payload)))
	frame = append(frame, payload...)
	c.wmu.Lock()
	_, err := c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.s.met.sendErrs.Inc()
	}
}

// serveConn reads frames off one connection, dispatching each request
// to its own goroutine so responses complete out of order. A decode
// failure is a protocol error and drops the connection.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(conn)
	c := &srvConn{s: s, conn: conn}
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	sem := make(chan struct{}, s.cfg.MaxPipeline)
	br := newFrameReader(conn)
	for {
		frame, err := br.next()
		if err != nil {
			return
		}
		req, n, err := protocol.DecodeRequest(frame)
		if err != nil || n != len(frame) {
			s.met.protoErrs.Inc()
			return
		}
		// The stage clock starts here: everything from decode to the
		// first Mark is admission time (including the pipeline-slot and
		// goroutine-spawn wait below).
		q := s.beginTrace(req)
		if !s.gate.enter() {
			s.refuse(c, q, req, protocol.Response{
				Tag: req.Tag, Status: protocol.StatusShutdown,
				Proc: -1, Err: "server draining",
			})
			continue
		}
		// Load shedding: past the in-flight watermark the server
		// fast-rejects instead of queueing — a retryable promise that the
		// client backs off on, bounding queue depth and tail latency.
		if int(s.met.inflight.Value()) >= s.cfg.MaxInflight {
			s.met.shed.Inc()
			s.gate.exit()
			s.refuse(c, q, req, protocol.Response{
				Tag: req.Tag, Status: protocol.StatusOverloaded,
				Proc: -1, Err: "in-flight watermark reached",
			})
			continue
		}
		s.met.inflight.Add(1)
		sem <- struct{}{}
		reqWG.Add(1)
		go func() {
			defer func() { <-sem; reqWG.Done(); s.gate.exit() }()
			s.handle(c, req, q)
			s.met.inflight.Add(-1)
		}()
	}
}

// beginTrace opens the per-request stage clock, carrying the wire's
// trace context onto it. The recorder is always on — without a
// registry the histograms simply go unscraped — so every request pays
// the same (pooled, allocation-free) cost.
func (s *Server) beginTrace(req protocol.Request) *reqtrace.Req {
	q := s.trace.Begin()
	q.TraceID = req.TraceID
	q.Sampled = req.TraceSampled
	return q
}

// endTrace closes the request's stage clock, folding it into the
// histograms and — when the request qualifies — the tail-sample ring.
func (s *Server) endTrace(q *reqtrace.Req, req protocol.Request, resp protocol.Response) {
	v := req.Var
	if req.Kind == protocol.ReqPing {
		v = -1
	}
	s.trace.End(q, reqtrace.Meta{
		Kind:   kindString(req.Kind),
		Status: protocol.StatusString(resp.Status),
		OK:     resp.Status == protocol.StatusOK,
		Proc:   resp.Proc,
		Var:    v,
		Err:    resp.Err,
	})
}

// stampEcho attaches the trace echo to a response bound for a traced
// request: the trace ID plus the server's stage decomposition so far.
// (The respond stage cannot be echoed from inside itself; it lives only
// in the server-side record, and shows up client-side as part of the
// await slack.)
func stampEcho(q *reqtrace.Req, resp *protocol.Response) {
	if q.TraceID == 0 {
		return
	}
	resp.TraceID = q.TraceID
	resp.TraceStages = q.ServerStages(nil)
}

// kindString names a request kind for trace records.
func kindString(k uint8) string {
	switch k {
	case protocol.ReqPing:
		return "ping"
	case protocol.ReqRead:
		return "read"
	case protocol.ReqWrite:
		return "write"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// refuse answers a request rejected before serving (drain, shedding)
// and closes its trace.
func (s *Server) refuse(c *srvConn, q *reqtrace.Req, req protocol.Request, resp protocol.Response) {
	q.Mark(reqtrace.StageAdmission)
	stampEcho(q, &resp)
	c.send(resp, req.Token)
	q.Mark(reqtrace.StageRespond)
	s.endTrace(q, req, resp)
}

// handle serves one request end to end and sends its response.
func (s *Server) handle(c *srvConn, req protocol.Request, q *reqtrace.Req) {
	resp := s.respond(c, req, q)
	resp.Tag = req.Tag
	if resp.Status != protocol.StatusOK {
		s.met.errsTotal.Inc()
	}
	stampEcho(q, &resp)
	c.send(resp, req.Token)
	q.Mark(reqtrace.StageRespond)
	s.endTrace(q, req, resp)
}

// respond computes the response for one request; c is the coalescing
// identity handed to the write pump. Writes carrying an op ID pass
// through the exactly-once window before touching the store.
func (s *Server) respond(c *srvConn, req protocol.Request, q *reqtrace.Req) protocol.Response {
	s.met.reqKind(req.Kind).Inc()
	if req.Kind == protocol.ReqPing {
		q.Mark(reqtrace.StageAdmission)
		return protocol.Response{Status: protocol.StatusOK, Proc: -1}
	}
	if req.Var < 0 || req.Var >= s.vars {
		q.Mark(reqtrace.StageAdmission)
		return badRequest(fmt.Sprintf("variable %d of %d", req.Var, s.vars))
	}
	if req.Proc < -1 || req.Proc >= s.procs {
		q.Mark(reqtrace.StageAdmission)
		return badRequest(fmt.Sprintf("replica %d of %d", req.Proc, s.procs))
	}
	if req.Token != nil && len(req.Token) != s.procs {
		q.Mark(reqtrace.StageAdmission)
		return badRequest(fmt.Sprintf("token dimension %d, cluster has %d processes", len(req.Token), s.procs))
	}
	q.Mark(reqtrace.StageAdmission)
	if req.Kind != protocol.ReqWrite || req.SID == 0 {
		return s.serve(c, req, q)
	}
	// Exactly-once admission: the first arrival of (SID, OpSeq) claims
	// the op and executes; a retry returns the cached applied response,
	// or waits for an in-flight first attempt and takes its outcome —
	// claiming the op itself only if that attempt failed to apply.
	// Everything from here to the claim resolution — including a wait
	// for an in-flight first attempt — is dedup time on the stage clock.
	counted := false
	for {
		cl := s.dedup.claim(req.SID, req.OpSeq)
		switch {
		case cl.tooOld:
			q.Mark(reqtrace.StageDedup)
			return badRequest(fmt.Sprintf("write op %d below the session's dedup window", req.OpSeq))
		case cl.cached:
			if !counted {
				s.met.retries.Inc()
			}
			q.Mark(reqtrace.StageDedup)
			return cachedResponse(cl.resp, req.Token)
		case cl.wait != nil:
			if !counted {
				s.met.retries.Inc()
				counted = true
			}
			select {
			case <-cl.wait:
			case <-s.abortCh:
				q.Mark(reqtrace.StageDedup)
				return protocol.Response{Status: protocol.StatusShutdown, Proc: -1, Err: "server closing"}
			}
		default:
			q.Mark(reqtrace.StageDedup)
			resp := s.serve(c, req, q)
			s.dedup.complete(req.SID, req.OpSeq, resp)
			return resp
		}
	}
}

// cachedResponse adapts a dedup-cached response to a retry: its token
// is cloned and merged with the retry's request token so the reply
// token still dominates the base the delta encoder works against.
func cachedResponse(r protocol.Response, reqTok vclock.VC) protocol.Response {
	if r.Token != nil {
		tok := r.Token.Clone()
		if len(reqTok) == len(tok) {
			tok.Merge(reqTok)
		}
		r.Token = tok
	}
	return r
}

// serve routes one validated request to a replica and executes it.
func (s *Server) serve(c *srvConn, req protocol.Request, q *reqtrace.Req) protocol.Response {
	proc, pinned := req.Proc, req.Proc >= 0
	if !pinned {
		proc = s.pick()
	}
	node := s.cfg.Cluster.Node(proc)
	// Token admission: wait until the replica's applied frontier
	// dominates the session's past. Writes wait too, so a session's
	// write is issued on a replica that already holds everything the
	// session observed.
	st, detail := s.waitFrontier(node, proc, req.Token, req.NoWait)
	if st == protocol.StatusUnavailable && !pinned && !req.NoWait {
		// The picked replica timed out or died under the wait. The pin
		// was the server's own choice, so fail the operation over to a
		// replica that already holds the session's past; with none
		// live and caught up, promise the client a retry is worthwhile
		// instead of reporting a hard unavailability.
		if fp := s.dominatingReplica(req.Token, proc); fp >= 0 {
			s.met.failovers.Inc()
			proc, node = fp, s.cfg.Cluster.Node(fp)
			st, detail = protocol.StatusOK, ""
		} else {
			st, detail = protocol.StatusRetry, "no live replica has reached the session token"
		}
	}
	q.Mark(reqtrace.StageFrontierWait)
	if st != protocol.StatusOK {
		return protocol.Response{Status: st, Proc: proc, Err: detail}
	}
	switch req.Kind {
	case protocol.ReqRead:
		v, from, err := node.ReadMeta(req.Var)
		if err != nil {
			q.Mark(reqtrace.StageApply)
			return errResponse(proc, err)
		}
		resp := protocol.Response{
			Status: protocol.StatusOK, Proc: proc, Val: v, From: from,
			Token: sessionToken(node, req.Token),
		}
		// Span linkage for reads: the trace record points at the write
		// the read observed, whose propagation obs.Span shares the same
		// (proc, seq).
		q.WriteProc, q.WriteSeq = from.Proc, from.Seq
		q.Mark(reqtrace.StageApply)
		return resp
	case protocol.ReqWrite:
		return s.pumps[proc].submit(c, req, q)
	default:
		q.Mark(reqtrace.StageApply)
		return badRequest(fmt.Sprintf("kind %d", req.Kind))
	}
}

// dominatingReplica finds a live replica other than not whose applied
// frontier already dominates tok; -1 when there is none.
func (s *Server) dominatingReplica(tok vclock.VC, not int) int {
	for p := 0; p < s.procs; p++ {
		if p == not || s.cfg.Cluster.Down(p) {
			continue
		}
		if s.cfg.Cluster.Node(p).FrontierDominates(tok) {
			return p
		}
	}
	return -1
}

// pick chooses a serving replica round-robin, skipping crash-stopped
// processes (falling back to the raw rotation if everything is down —
// the per-node error path reports it properly).
func (s *Server) pick() int {
	base := int(s.next.Add(1))
	for i := 0; i < s.procs; i++ {
		p := (base + i) % s.procs
		if !s.cfg.Cluster.Down(p) {
			return p
		}
	}
	return base % s.procs
}

// waitFrontier blocks until node's applied frontier dominates tok,
// parking on the node's frontier-change notification instead of
// polling: the replica's apply path broadcasts on every frontier-
// affecting event (apply, local write, logical apply, crash, restart),
// so admission wakes at the event that satisfies it rather than at the
// next poll tick. It returns a non-OK status when the wait cannot
// succeed: NoWait and a lagging frontier, a crash-stopped replica,
// WaitTimeout exceeded, or server Close.
func (s *Server) waitFrontier(node *core.Node, proc int, tok vclock.VC, noWait bool) (uint8, string) {
	if len(tok) == 0 {
		return protocol.StatusOK, ""
	}
	start := time.Now()
	var timeout <-chan time.Time
	for {
		if node.FrontierDominates(tok) {
			s.met.frontierWait.Observe(time.Since(start).Nanoseconds())
			return protocol.StatusOK, ""
		}
		if s.cfg.Cluster.Down(proc) {
			return protocol.StatusUnavailable, fmt.Sprintf("replica %d is down", proc)
		}
		if noWait {
			return protocol.StatusUnavailable, "frontier behind session token"
		}
		if s.aborted.Load() {
			return protocol.StatusShutdown, "server closing"
		}
		ch, cancel := node.FrontierWait(tok)
		// Missed-wakeup guard: the frontier may have moved between the
		// dominance check and the registration.
		if node.FrontierDominates(tok) {
			cancel()
			continue
		}
		if timeout == nil {
			timer := time.NewTimer(s.cfg.WaitTimeout)
			defer timer.Stop()
			timeout = timer.C
		}
		select {
		case <-ch:
		case <-timeout:
			cancel()
			s.met.waitTimeouts.Inc()
			return protocol.StatusUnavailable,
				fmt.Sprintf("frontier behind session token after %v", s.cfg.WaitTimeout)
		case <-s.abortCh:
			cancel()
			return protocol.StatusShutdown, "server closing"
		}
		cancel()
	}
}

// sessionToken advances a session token past an operation served at
// node: max(token, applied frontier). Returning nil (on a replica that
// crashed mid-request) means "unchanged" on the wire.
func sessionToken(node *core.Node, tok vclock.VC) vclock.VC {
	f := node.Frontier()
	if f == nil {
		return nil
	}
	if len(tok) == len(f) {
		f.Merge(tok)
	}
	return f
}

// badRequest builds a StatusBadRequest response.
func badRequest(detail string) protocol.Response {
	return protocol.Response{Status: protocol.StatusBadRequest, Proc: -1, Err: detail}
}

// errResponse maps a core error to a response status.
func errResponse(proc int, err error) protocol.Response {
	st := protocol.StatusUnavailable
	if errors.Is(err, core.ErrClosed) {
		st = protocol.StatusShutdown
	} else if errors.Is(err, core.ErrBadVariable) {
		st = protocol.StatusBadRequest
	}
	return protocol.Response{Status: st, Proc: proc, Err: err.Error()}
}

// drainGate tracks in-flight requests and refuses new ones once
// draining, so Shutdown can wait for a true idle point: enter/exit
// share one mutex with the drain flag, closing the race a bare
// WaitGroup would have between the draining check and the Add.
type drainGate struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{}
}

// enter registers an in-flight request; false means the server is
// draining and the request must be refused.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

// exit retires an in-flight request.
func (g *drainGate) exit() {
	g.mu.Lock()
	g.n--
	if g.draining && g.n == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
	g.mu.Unlock()
}

// drain flips the gate to draining and returns a channel closed when
// the last in-flight request exits.
func (g *drainGate) drain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch := make(chan struct{})
	if !g.draining {
		g.draining = true
		if g.n == 0 {
			close(ch)
		} else {
			g.idle = ch
		}
		return ch
	}
	// Second drain (Close after Shutdown): report current state.
	if g.n == 0 {
		close(ch)
		return ch
	}
	return g.idle
}

// frameReader decodes uvarint-length-prefixed frames off a stream,
// mirroring the TCP transport's framing.
type frameReader struct {
	r   io.Reader
	buf [1]byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (f *frameReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(f.r, f.buf[:]); err != nil {
		return 0, err
	}
	return f.buf[0], nil
}

// next reads one frame.
func (f *frameReader) next() ([]byte, error) {
	n, err := binary.ReadUvarint(f)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("service: frame of %d bytes exceeds %d", n, maxFrame)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(f.r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
