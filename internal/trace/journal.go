package trace

import (
	"runtime"
	"sort"
	"sync/atomic"
)

// Journal is the live runtime's concurrent event recorder: a sharded,
// lock-free append structure that replaces the single mutex-guarded
// Log on the hot path. Each process appends into its own shard (a
// linked list of fixed-size chunks, so a recorded event is never moved
// again — no reallocation, no copying), while a single global ticket
// counter stamps every event with its position in the cluster-wide
// total order. Snapshot merges the shards back into an ordinary Log
// whenever a checker or experiment wants one.
//
// Why the checker still sees a total order: an event's ticket is
// acquired inside the operation that produces it, before the operation
// releases whatever makes the event observable elsewhere (the node
// lock, the transport send). If event e₁ happens-before e₂ — same
// process program order, or a message send/receive pair — then e₁'s
// ticket was drawn strictly before e₂'s, so sorting by ticket yields a
// total order consistent with every per-process sequence E_i and with
// message causality, exactly what Log.Append's global lock used to
// guarantee.
//
// Mid-run snapshots additionally truncate at the first missing ticket:
// tickets are dense, so a gap means some append is still in flight, and
// every event after the gap might causally depend on the missing one.
// Cutting there makes every Snapshot a true prefix of the final log,
// preserving the old "mid-run audits see a prefix" contract. After
// Quiesce/Close there are no in-flight appends and nothing is cut.
type Journal struct {
	numProcs  int
	numVars   int
	shareSets [][]int

	// ticket is the global order ticket source; the next event gets
	// ticket.Add(1)-1 as its Seq.
	ticket atomic.Int64

	shards []shard
}

// chunkSize is the shard chunk capacity. 512 events ≈ 60 KiB per
// chunk: large enough that chunk allocation is a ~1/512-per-event
// amortized cost, small enough that short runs don't balloon.
const chunkSize = 512

type chunk struct {
	idx    int // position in the shard's chunk list, fixed at creation
	next   atomic.Pointer[chunk]
	events [chunkSize]Event
	ready  [chunkSize]atomic.Bool
}

// shard is one process's append lane. cursor reserves slots; slot k
// lives in chunk k/chunkSize at offset k%chunkSize. Chunks are linked
// on demand with a CAS, so concurrent reservers of a fresh chunk agree
// on a single winner. The pad keeps neighbouring shards' hot counters
// off one cache line.
type shard struct {
	cursor atomic.Int64
	head   atomic.Pointer[chunk]
	tail   atomic.Pointer[chunk] // hint only; may lag behind the true tail
	_      [40]byte
}

// NewJournal returns an empty journal for n processes over m variables.
func NewJournal(n, m int) *Journal {
	j := &Journal{numProcs: n, numVars: m, shards: make([]shard, n)}
	for i := range j.shards {
		c := new(chunk)
		j.shards[i].head.Store(c)
		j.shards[i].tail.Store(c)
	}
	return j
}

// NumProcs returns the process count the journal was built for.
func (j *Journal) NumProcs() int { return j.numProcs }

// NumVars returns the variable count the journal was built for.
func (j *Journal) NumVars() int { return j.numVars }

// SetShareSets records the run's partial-replication assignment so
// every Snapshot carries it to the audit. Must be called before the
// first Snapshot; the journal does not copy the slices.
func (j *Journal) SetShareSets(sets [][]int) { j.shareSets = sets }

// Record stores *e, stamping its global ticket into e.Seq in place —
// the copy-free form of Append for hot paths. It is safe for
// concurrent use and lock-free: one atomic add for the ticket, one for
// the shard slot, a release store to publish. e.Proc must be in
// [0, NumProcs). Record does not retain e.
func (j *Journal) Record(e *Event) {
	e.Seq = int(j.ticket.Add(1) - 1)
	s := &j.shards[e.Proc]
	slot := s.cursor.Add(1) - 1
	c := s.chunkFor(int(slot / chunkSize))
	off := int(slot % chunkSize)
	c.events[off] = *e
	c.ready[off].Store(true)
}

// Append records e, stamping its global ticket into Seq, and returns
// the stored event.
func (j *Journal) Append(e Event) Event {
	j.Record(&e)
	return e
}

// chunkFor walks (extending as needed) to chunk index ci of the shard.
// The tail hint makes the walk O(1) in the steady state: appends land
// in the newest chunk, which is exactly where the hint points.
func (s *shard) chunkFor(ci int) *chunk {
	c := s.tail.Load()
	if c.idx > ci {
		c = s.head.Load() // hint overshot (a slower append behind us)
	}
	for c.idx < ci {
		next := c.next.Load()
		if next == nil {
			fresh := &chunk{idx: c.idx + 1}
			if c.next.CompareAndSwap(nil, fresh) {
				next = fresh
			} else {
				next = c.next.Load()
			}
		}
		c = next
	}
	s.tail.Store(c)
	return c
}

// Len returns the number of tickets drawn so far (appends completed or
// in flight).
func (j *Journal) Len() int { return int(j.ticket.Load()) }

// Snapshot merges the shards into a Log ordered by ticket. Events whose
// append is still in flight are waited for briefly (the publish is a
// handful of instructions after the reservation); if the collected
// tickets have a gap — an append that reserved a ticket but has not yet
// reached its shard — the log is truncated at the gap so the result is
// a causally-closed prefix of the run. Seq is renumbered densely.
func (j *Journal) Snapshot() *Log {
	total := 0
	counts := make([]int64, len(j.shards))
	for i := range j.shards {
		counts[i] = j.shards[i].cursor.Load()
		total += int(counts[i])
	}
	events := make([]Event, 0, total)
	for i := range j.shards {
		s := &j.shards[i]
		c := s.head.Load()
		off := 0
		for k := int64(0); k < counts[i]; k++ {
			if off == chunkSize {
				c = c.next.Load()
				off = 0
			}
			for !c.ready[off].Load() {
				runtime.Gosched()
			}
			events = append(events, c.events[off])
			off++
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Seq < events[b].Seq })
	// Truncate at the first ticket gap and renumber densely so the
	// result is indistinguishable from a log built by Log.Append.
	for i := range events {
		if events[i].Seq != i {
			events = events[:i]
			break
		}
		events[i].Seq = i
	}
	l := NewLog(j.numProcs, j.numVars)
	l.Events = events
	l.ShareSets = j.shareSets
	return l
}
