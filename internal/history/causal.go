package history

import (
	"errors"
	"fmt"

	"repro/internal/vclock"
)

// ErrCyclic reports a history whose →co relation is not a partial order
// (a cycle through process-order and read-from edges). Such a history
// can be written down but cannot be produced by any protocol in 𝒫.
var ErrCyclic = errors.New("history: →co contains a cycle")

// CausalOrder is the query interface over a computed →co relation,
// implemented by both the vector-frontier Causality engine (the default)
// and the dense-bitset DenseCausality reference. The checker stores one
// of these in its Report so audits can run against either.
type CausalOrder interface {
	History() *History
	Before(i, j int) bool
	Concurrent(i, j int) bool
	CausalPast(i int) []int
	CausalPastSize(i int) int
	WritesBefore(i int) []WriteID
	WriteBefore(w, w2 WriteID) bool
	WriteConcurrent(w, w2 WriteID) bool
	Topo() []int
	WriteGraph() *WriteGraph
	LegalRead(i int) (bool, Violation)
	CheckCausallyConsistent() []Violation
	IsCausallyConsistent() bool
}

// Causality is the computed →co relation of a History: the transitive
// closure of process order ∪ read-from, per Section 2.
//
// Rather than materializing the closure as per-op bitsets (O(n²/64)
// memory — see DenseCausality for that small-trace reference), it stores
// two vector timestamps per operation, recomputed from the observed
// history in one topological pass and never trusting protocol clocks:
//
//	opvec[i][p] = number of operations of process p in ↓(i, →co) ∪ {i}
//	wvec[i][p]  = number of writes of process p in ↓(i, →co) ∪ {i}
//
// wvec is exactly the paper's Write_co vector (Definition 6): causal
// pasts are prefix-closed per process, so counting is naming, and by
// Theorems 1–2 the vectors characterize →co. Every precedence query
// becomes an O(1) component comparison:
//
//	ops[i] →co ops[j]  ⇔  i ≠ j ∧ opvec[j][proc(i)] > localIndex(i)
//
// Total metadata is O(n·P) — two flat uint64 slabs — so a million-op
// four-process trace costs ~64 MB where the dense closure would need
// hundreds of gigabytes.
type Causality struct {
	h  *History
	n  int // operations
	np int // processes

	// opvec and wvec are n×np row-major slabs; row i is the operation/
	// write count vector of global op i, exposed as a vclock.VC view.
	opvec []uint64
	wvec  []uint64
	// topo is a topological order of the direct-edge DAG.
	topo []int
	// base[p] is the global index of p's first operation (process-major
	// flattening means p's local index k lives at global base[p]+k).
	base []int
	// writesBy[p][s-1] is the global index of write (p, s).
	writesBy [][]int
	// varWrites[p][x] lists the Seqs of p's writes to variable x,
	// ascending — the legality checker's per-variable index.
	varWrites [][][]int
}

// directEdges invokes fn(from, to) for every generator edge of →co:
// consecutive process-order pairs and read-from pairs.
func (h *History) directEdges(fn func(from, to int)) {
	base := 0
	for _, local := range h.Locals {
		for i := 1; i < len(local); i++ {
			fn(base+i-1, base+i)
		}
		base += len(local)
	}
	for i, o := range h.ops {
		if o.IsRead() && !o.From.IsBottom() {
			fn(h.writeIdx[o.From], i)
		}
	}
}

// Causality computes the →co vector representation. It returns ErrCyclic
// if the history's generator edges contain a cycle.
func (h *History) Causality() (*Causality, error) {
	n := len(h.ops)
	np := len(h.Locals)
	c := &Causality{h: h, n: n, np: np}

	c.base = make([]int, np)
	for p := 1; p < np; p++ {
		c.base[p] = c.base[p-1] + len(h.Locals[p-1])
	}

	// CSR adjacency of the generator DAG: each op has at most two direct
	// predecessors (previous local op, read-from source), so two O(n)
	// passes beat per-node append slices at the million-op scale.
	indeg := make([]int, n)
	outdeg := make([]int, n)
	h.directEdges(func(from, to int) {
		outdeg[from]++
		indeg[to]++
	})
	start := make([]int, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + outdeg[i]
	}
	adj := make([]int, start[n])
	fill := make([]int, n)
	copy(fill, start[:n])
	h.directEdges(func(from, to int) {
		adj[fill[from]] = to
		fill[from]++
	})

	// Kahn topological sort, detecting cycles.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	c.topo = make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		c.topo = append(c.topo, v)
		for _, w := range adj[start[v]:start[v+1]] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(c.topo) != n {
		return nil, fmt.Errorf("%w: %d of %d operations unreachable in topological sort", ErrCyclic, n-len(c.topo), n)
	}

	// One pass in topological order computes both vectors: an op inherits
	// its previous local op's vectors (global index i−1 under process-
	// major flattening), merges its read-from source's, then ticks its
	// own process component — to localIndex+1 for opvec, and to its Seq
	// for wvec when it is a write (the inclusive Write_co convention of
	// the paper: a write counts itself on the issuing component).
	c.opvec = make([]uint64, n*np)
	c.wvec = make([]uint64, n*np)
	for _, v := range c.topo {
		ref := h.refs[v]
		ov := c.opvec[v*np : (v+1)*np]
		wv := c.wvec[v*np : (v+1)*np]
		if ref.Index > 0 {
			copy(ov, c.opvec[(v-1)*np:v*np])
			copy(wv, c.wvec[(v-1)*np:v*np])
		}
		o := h.ops[v]
		if o.IsRead() && !o.From.IsBottom() {
			s := h.writeIdx[o.From]
			vclock.VC(ov).Merge(c.opvec[s*np : (s+1)*np])
			vclock.VC(wv).Merge(c.wvec[s*np : (s+1)*np])
		}
		ov[ref.Proc] = uint64(ref.Index) + 1
		if o.IsWrite() {
			wv[ref.Proc] = uint64(o.ID.Seq)
		}
	}

	// Per-process write indices for WriteGraph and legality.
	c.writesBy = make([][]int, np)
	c.varWrites = make([][][]int, np)
	for p := range c.varWrites {
		c.varWrites[p] = make([][]int, h.NumVars)
	}
	for i, o := range h.ops {
		if o.IsWrite() {
			p := o.ID.Proc
			c.writesBy[p] = append(c.writesBy[p], i)
			c.varWrites[p][o.Var] = append(c.varWrites[p][o.Var], o.ID.Seq)
		}
	}
	return c, nil
}

// History returns the underlying history.
func (c *Causality) History() *History { return c.h }

// Before reports ops[i] →co ops[j] in O(1): i precedes j iff j's causal
// past contains at least localIndex(i)+1 operations of i's process.
func (c *Causality) Before(i, j int) bool {
	if i == j {
		return false
	}
	ref := c.h.refs[i]
	return c.opvec[j*c.np+ref.Proc] > uint64(ref.Index)
}

// Concurrent reports ops[i] ‖co ops[j] (distinct, neither before the other).
func (c *Causality) Concurrent(i, j int) bool {
	return i != j && !c.Before(i, j) && !c.Before(j, i)
}

// OpVector returns the operation-count vector of ops[i]: component p is
// the number of p's operations in ↓(i, →co) ∪ {i}. The returned clock is
// a view into the engine's slab and must not be modified.
func (c *Causality) OpVector(i int) vclock.VC {
	return vclock.VC(c.opvec[i*c.np : (i+1)*c.np])
}

// WriteVector returns the checker-side Write_co vector of ops[i]:
// component p counts p's writes in ↓(i, →co) ∪ {i}, so for a write the
// issuing component includes the write itself, matching Definition 6.
// The returned clock is a view into the engine's slab and must not be
// modified.
func (c *Causality) WriteVector(i int) vclock.VC {
	return vclock.VC(c.wvec[i*c.np : (i+1)*c.np])
}

// CausalPast returns ↓(ops[i], →co): the global indices of all
// operations strictly before ops[i], in increasing index order. The
// per-process prefix property makes this a direct enumeration: p
// contributes exactly its first opvec[i][p] operations.
func (c *Causality) CausalPast(i int) []int {
	var out []int
	row := c.opvec[i*c.np : (i+1)*c.np]
	for p := 0; p < c.np; p++ {
		for k := 0; k < int(row[p]); k++ {
			if gi := c.base[p] + k; gi != i {
				out = append(out, gi)
			}
		}
	}
	return out
}

// CausalPastSize returns |↓(ops[i], →co)| without materializing it.
func (c *Causality) CausalPastSize(i int) int {
	size := -1 // opvec counts i itself on its own component
	for _, x := range c.opvec[i*c.np : (i+1)*c.np] {
		size += int(x)
	}
	return size
}

// WritesBefore returns the write operations in ↓(ops[i], →co) as
// WriteIDs in increasing global-index order. Per Definition 4 this is
// exactly X_co-safe(apply_k(ops[i])) for every process k when ops[i] is
// a write.
func (c *Causality) WritesBefore(i int) []WriteID {
	var ids []WriteID
	row := c.wvec[i*c.np : (i+1)*c.np]
	self := c.h.ops[i]
	for p := 0; p < c.np; p++ {
		max := int(row[p])
		if self.IsWrite() && self.ID.Proc == p {
			max-- // wvec is inclusive of the write itself
		}
		for s := 1; s <= max; s++ {
			ids = append(ids, WriteID{Proc: p, Seq: s})
		}
	}
	return ids
}

// WriteBefore reports w →co w' for two writes given by ID. It panics if
// either ID is unknown; Bottom is before every operation by convention
// and after none.
func (c *Causality) WriteBefore(w, w2 WriteID) bool {
	if w.IsBottom() {
		return !w2.IsBottom()
	}
	if w2.IsBottom() {
		return false
	}
	i, j := c.mustWrite(w), c.mustWrite(w2)
	return c.Before(i, j)
}

// WriteConcurrent reports w ‖co w' for two distinct writes.
func (c *Causality) WriteConcurrent(w, w2 WriteID) bool {
	if w.IsBottom() || w2.IsBottom() {
		return false
	}
	return c.Concurrent(c.mustWrite(w), c.mustWrite(w2))
}

func (c *Causality) mustWrite(id WriteID) int {
	idx := c.h.WriteIndex(id)
	if idx < 0 {
		panic(fmt.Sprintf("history: unknown write %v", id))
	}
	return idx
}

// Topo returns a topological order of the operations consistent with →co.
func (c *Causality) Topo() []int {
	t := make([]int, len(c.topo))
	copy(t, c.topo)
	return t
}
