package paperrepro

import (
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
)

func TestTable1MatchesPaper(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's rows, translated: empty sets for a; {a} for c and b;
	// {a, b} for d — identical at every process.
	for _, frag := range []string{
		"apply1(w1(x1)a)",
		"∅",
		"{apply1(w1(x1)a)}",
		"{apply3(w1(x1)a), apply3(w2(x2)b)}",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 1 missing %q:\n%s", frag, out)
		}
	}
	// X_co-safe(c) and X_co-safe(b) both = {a}; never contains c.
	if strings.Contains(out, "w1(x1)c)}") {
		t.Errorf("Table 1 contains c inside a set:\n%s", out)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// The distinguishing rows: X_ANBKH(b) = {a, c}, X_ANBKH(d) = {a, c, b}.
	for _, frag := range []string{
		"{apply1(w1(x1)a), apply1(w1(x1)c)}",
		"{apply2(w1(x1)a), apply2(w1(x1)c), apply2(w2(x2)b)}",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 2 missing %q:\n%s", frag, out)
		}
	}
}

func TestXSetsContrast(t *testing.T) {
	xA, safe, err := XSets(protocol.ANBKH)
	if err != nil {
		t.Fatal(err)
	}
	if len(xA[WB]) != 2 || len(safe[WB]) != 1 {
		t.Fatalf("X_ANBKH(b) = %v, X_co-safe(b) = %v", xA[WB], safe[WB])
	}
	xO, safeO, err := XSets(protocol.OptP)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range writeOrder {
		if len(xO[w]) != len(safeO[w]) {
			t.Fatalf("OptP X(%v) = %v != X_co-safe = %v", w, xO[w], safeO[w])
		}
	}
}

func TestFig1Sequences(t *testing.T) {
	out, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// Run (1): the paper's no-delay sequence.
	want1 := "receipt3(w1(x1)a) <3 apply3(w1(x1)a) <3 receipt3(w2(x2)b) <3 apply3(w2(x2)b) <3 return3(x2,b) <3 apply3(w3(x2)d) <3 receipt3(w1(x1)c) <3 apply3(w1(x1)c)"
	// Run (2): b overtakes a; the read happens after c lands.
	want2 := "receipt3(w2(x2)b) <3 receipt3(w1(x1)a) <3 apply3(w1(x1)a) <3 apply3(w2(x2)b) <3 receipt3(w1(x1)c) <3 apply3(w1(x1)c) <3 return3(x2,b) <3 apply3(w3(x2)d)"
	if !strings.Contains(out, want1) {
		t.Errorf("Fig1 run (1) sequence wrong:\n%s", out)
	}
	if !strings.Contains(out, want2) {
		t.Errorf("Fig1 run (2) sequence wrong:\n%s", out)
	}
	if !strings.Contains(out, "write delays: none") {
		t.Errorf("Fig1 run (1) should report no delays:\n%s", out)
	}
	if !strings.Contains(out, "1 necessary, 0 unnecessary") {
		t.Errorf("Fig1 run (2) should report one necessary delay:\n%s", out)
	}
}

func TestFig2NonOptimalDelay(t *testing.T) {
	out, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 necessary, 1 unnecessary") {
		t.Errorf("Fig2 P should show one unnecessary delay:\n%s", out)
	}
	if !strings.Contains(out, "write delays: none") {
		t.Errorf("Fig2 OptP should show no delay:\n%s", out)
	}
}

func TestFig3FalseCausality(t *testing.T) {
	out, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's p3 sequence: b buffered until after c applies.
	want := "receipt3(w2(x2)b) <3 receipt3(w1(x1)a) <3 apply3(w1(x1)a) <3 receipt3(w1(x1)c) <3 apply3(w1(x1)c) <3 apply3(w2(x2)b) <3 return3(x2,b) <3 apply3(w3(x2)d)"
	if !strings.Contains(out, want) {
		t.Errorf("Fig3 p3 sequence wrong:\n%s", out)
	}
	if !strings.Contains(out, "VT = [2 1 0]") {
		t.Errorf("Fig3 missing b's clock:\n%s", out)
	}
}

func TestFig6OptPRun(t *testing.T) {
	out, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's p3 sequence: b applies right after a, before c.
	want := "receipt3(w2(x2)b) <3 receipt3(w1(x1)a) <3 apply3(w1(x1)a) <3 apply3(w2(x2)b) <3 return3(x2,b) <3 apply3(w3(x2)d) <3 receipt3(w1(x1)c) <3 apply3(w1(x1)c)"
	if !strings.Contains(out, want) {
		t.Errorf("Fig6 p3 sequence wrong:\n%s", out)
	}
	for _, frag := range []string{
		"w1(x1)a.Write_co = [1 0 0]",
		"w1(x1)c.Write_co = [2 0 0]",
		"w2(x2)b.Write_co = [1 1 0]",
		"w3(x2)d.Write_co = [1 1 1]",
		"1 necessary, 0 unnecessary",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig6 missing %q:\n%s", frag, out)
		}
	}
}

func TestFig7Graph(t *testing.T) {
	out, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"w1(x1)a -> w1(x1)c",
		"w1(x1)a -> w2(x2)b",
		"w2(x2)b -> w3(x2)d",
		"digraph",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig7 missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "w1(x1)c -> w3(x2)d") {
		t.Errorf("Fig7 must not contain the paper's typo edge c -> d:\n%s", out)
	}
}

func TestAllArtifactsRender(t *testing.T) {
	out, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Artifacts() {
		_ = a
	}
	for _, frag := range []string{"Table 1", "Table 2", "Figure 1", "Figure 2", "Figure 3", "Figure 6", "Figure 7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("All() missing %q", frag)
		}
	}
}

func TestRunH1ReproducesH1(t *testing.T) {
	res, err := RunH1(protocol.OptP, Fig36Latency(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.Log.History()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := history.H1()
	if h.String() != want.String() {
		t.Fatalf("history:\n%swant:\n%s", h, want)
	}
}

func TestWriteNameFallback(t *testing.T) {
	if writeName(history.WriteID{Proc: 7, Seq: 3}) != "w8#3" {
		t.Fatal("fallback name wrong")
	}
	if valName(99) != "99" {
		t.Fatal("fallback value wrong")
	}
	if setName(0, nil) != "∅" {
		t.Fatal("empty set rendering wrong")
	}
}
