package vclock

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripBinary(t *testing.T) {
	cases := []VC{
		{},
		{0},
		{1, 2, 3},
		{0, 0, 0, 0},
		{1 << 40, 127, 128, 300},
	}
	for _, v := range cases {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got VC
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
		if v.EncodedSize() != len(data) {
			t.Fatalf("EncodedSize(%v) = %d, want %d", v, v.EncodedSize(), len(data))
		}
	}
}

func TestDecodeVCConsumed(t *testing.T) {
	v := VC{5, 6, 7}
	buf := v.AppendBinary(nil)
	buf = append(buf, 0xAA, 0xBB) // trailing junk
	got, n, err := DecodeVC(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("decode = %v", got)
	}
	if n != len(buf)-2 {
		t.Fatalf("consumed %d, want %d", n, len(buf)-2)
	}
}

func TestUnmarshalTrailing(t *testing.T) {
	buf := (VC{1}).AppendBinary(nil)
	buf = append(buf, 0x00)
	var v VC
	if err := v.UnmarshalBinary(buf); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := (VC{1, 200, 3}).AppendBinary(nil)
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeVC(full[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
}

func TestDecodeAbsurdDimension(t *testing.T) {
	// Claim dimension 2^40 with a 6-byte buffer.
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
	if _, _, err := DecodeVC(buf); err == nil {
		t.Fatal("expected error on absurd dimension")
	}
}

func TestDecodeDimensionCap(t *testing.T) {
	// A long hostile frame may pass the ≥1-byte-per-component heuristic
	// while still declaring an enormous clock; the hard cap rejects it.
	buf := binary.AppendUvarint(nil, MaxDecodeDim+1)
	buf = append(buf, make([]byte, MaxDecodeDim+1)...)
	if _, _, err := DecodeVC(buf); !errors.Is(err, ErrDimension) {
		t.Fatalf("DecodeVC above cap: %v", err)
	}
	if _, _, err := DecodeStab(buf); !errors.Is(err, ErrDimension) {
		t.Fatalf("DecodeStab above cap: %v", err)
	}
	// Exactly at the cap is legal.
	at := New(MaxDecodeDim).AppendBinary(nil)
	if _, _, err := DecodeVC(at); err != nil {
		t.Fatalf("DecodeVC at cap: %v", err)
	}
}

func TestMarshalOneAllocation(t *testing.T) {
	// Components past two varint bytes used to overflow the old 1+2*len
	// capacity hint and force a regrow; sizing from EncodedSize makes
	// MarshalBinary exactly one allocation for any magnitude.
	v := VC{1 << 40, 1 << 60, 127, 128, 1 << 20, 0, 3}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := v.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 1 {
		t.Fatalf("MarshalBinary allocs = %v, want 1", allocs)
	}
}

func TestStabRoundTrip(t *testing.T) {
	cases := []VC{
		{},
		{0},
		{5, 5, 5, 5},       // fully stable: floor only, no residuals
		{9, 9, 9, 12},      // one leader
		{0, 3, 0, 7},       // floor zero
		{1 << 40, 1, 1, 1}, // wide leader
	}
	for _, v := range cases {
		buf := AppendStab(nil, v)
		if len(buf) != StabSize(v) {
			t.Fatalf("StabSize(%v) = %d, emitted %d", v, StabSize(v), len(buf))
		}
		got, n, err := DecodeStab(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode %v: n=%d err=%v", v, n, err)
		}
		if !got.Equal(v) {
			t.Fatalf("stab round trip %v -> %v", v, got)
		}
	}
}

func TestQuickStabRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(32)
		v := New(n)
		floor := uint64(rng.Intn(1 << 20))
		for i := range v {
			v[i] = floor
			if rng.Intn(4) == 0 {
				v[i] += uint64(rng.Intn(1000))
			}
		}
		buf := AppendStab(nil, v)
		got, k, err := DecodeStab(buf)
		return err == nil && k == len(buf) && got.Equal(v) && len(buf) == StabSize(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStabDecodeErrors(t *testing.T) {
	full := AppendStab(nil, VC{3, 3, 9, 3})
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeStab(full[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
	// dim=2, floor=1, nz=3 > dim.
	if _, _, err := DecodeStab([]byte{2, 1, 3, 0, 1, 1, 1}); err == nil {
		t.Fatal("expected residual-count error")
	}
	// dim=2, floor=0, nz=1, residual index 5 out of range.
	if _, _, err := DecodeStab([]byte{2, 0, 1, 5, 1}); err == nil {
		t.Fatal("expected residual-index error")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	base := VC{3, 0, 9, 1}
	v := VC{3, 5, 9, 4}
	buf := v.AppendDelta(nil, base)
	got, n, err := DecodeDelta(buf, base)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if !got.Equal(v) {
		t.Fatalf("delta round trip = %v, want %v", got, v)
	}
	// An equal clock encodes as a single zero byte.
	if same := base.AppendDelta(nil, base); !bytes.Equal(same, []byte{0}) {
		t.Fatalf("identity delta = %v", same)
	}
}

func TestDeltaPanicsOnRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when base exceeds value")
		}
	}()
	(VC{1, 0}).AppendDelta(nil, VC{2, 0})
}

func TestDeltaBadIndex(t *testing.T) {
	// count=1, index=7, delta=1 against dimension-2 base.
	buf := []byte{1, 7, 1}
	if _, _, err := DecodeDelta(buf, VC{0, 0}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 9)
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := range v {
			v[i] = uint64(rng.Int63n(1 << 30))
		}
		buf := v.AppendBinary(nil)
		got, k, err := DecodeVC(buf)
		return err == nil && k == len(buf) && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		base := New(n)
		v := New(n)
		for i := range v {
			base[i] = uint64(rng.Intn(100))
			v[i] = base[i] + uint64(rng.Intn(5))
		}
		buf := v.AppendDelta(nil, base)
		got, k, err := DecodeDelta(buf, base)
		return err == nil && k == len(buf) && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	x := quickVC(16, 1)
	y := quickVC(16, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Merge(y)
	}
}

func BenchmarkCompare(b *testing.B) {
	x := quickVC(16, 1)
	y := quickVC(16, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkEncode(b *testing.B) {
	x := quickVC(16, 1)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = x.AppendBinary(buf[:0])
	}
}
