package trace

import (
	"sync"
	"testing"
)

// TestJournalSequential checks that a single-goroutine journal is
// indistinguishable from a Log built by Append.
func TestJournalSequential(t *testing.T) {
	const procs, vars, n = 3, 2, 3000 // spans several chunks per shard
	j := NewJournal(procs, vars)
	want := NewLog(procs, vars)
	for i := 0; i < n; i++ {
		e := Event{Kind: Issue, Proc: i % procs, Time: int64(i), Var: i % vars, Val: int64(i)}
		got := j.Append(e)
		if exp := want.Append(e); got != exp {
			t.Fatalf("append %d: got %+v want %+v", i, got, exp)
		}
	}
	snap := j.Snapshot()
	if len(snap.Events) != n {
		t.Fatalf("snapshot has %d events, want %d", len(snap.Events), n)
	}
	for i := range snap.Events {
		if snap.Events[i] != want.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, snap.Events[i], want.Events[i])
		}
	}
	if j.Len() != n {
		t.Fatalf("Len = %d, want %d", j.Len(), n)
	}
}

// TestJournalConcurrent hammers the journal from one goroutine per
// process plus cross-proc writers, then checks the snapshot is a dense,
// per-proc-ordered total order containing every event exactly once.
func TestJournalConcurrent(t *testing.T) {
	const procs, perProc = 8, 2000
	j := NewJournal(procs, 1)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				// Val encodes (proc, local index) so the checker below can
				// verify per-proc program order survived the merge.
				j.Append(Event{Kind: Apply, Proc: p, Val: int64(p*perProc + i)})
			}
		}(p)
	}
	wg.Wait()
	snap := j.Snapshot()
	if len(snap.Events) != procs*perProc {
		t.Fatalf("snapshot has %d events, want %d", len(snap.Events), procs*perProc)
	}
	seen := make(map[int64]bool, procs*perProc)
	next := make([]int64, procs)
	for i, e := range snap.Events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d: numbering not dense", i, e.Seq)
		}
		if seen[e.Val] {
			t.Fatalf("event %d duplicated", e.Val)
		}
		seen[e.Val] = true
		if want := int64(e.Proc*perProc) + next[e.Proc]; e.Val != want {
			t.Fatalf("proc %d order broken: got event %d, want %d", e.Proc, e.Val, want)
		}
		next[e.Proc]++
	}
}

// TestJournalSnapshotPrefix checks that consecutive snapshots of a
// journal under concurrent appends are prefixes of one another — the
// contract mid-run audits rely on.
func TestJournalSnapshotPrefix(t *testing.T) {
	const procs = 4
	j := NewJournal(procs, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				j.Append(Event{Kind: Apply, Proc: p, Val: int64(i)})
			}
		}(p)
	}
	var prev *Log
	for i := 0; i < 50; i++ {
		snap := j.Snapshot()
		if prev != nil {
			if len(snap.Events) < len(prev.Events) {
				t.Fatalf("snapshot %d shrank: %d < %d", i, len(snap.Events), len(prev.Events))
			}
			for k := range prev.Events {
				if snap.Events[k] != prev.Events[k] {
					t.Fatalf("snapshot %d is not an extension of its predecessor at %d", i, k)
				}
			}
		}
		prev = snap
	}
	close(stop)
	wg.Wait()
}
