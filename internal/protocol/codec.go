package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// Wire format of an Update (all integers varint/uvarint):
//
//	proc, seq          — WriteID (seq is varint: markers use negatives)
//	var, val           — location (varint; -1 for markers) and payload
//	clock              — vclock wire encoding (may be empty/zero-dim)
//	prevProc, prevSeq  — overwritten-predecessor WriteID
//	round, slot, size  — token batch coordinates
//	flags              — bit 0: marker, bit 1: read request,
//	                     bit 2: read reply
//
// The codec is used by the TCP transport; it allocates only the
// destination buffer and round-trips every field exactly.

// ErrUpdateTruncated reports a buffer ending inside an encoded update.
var ErrUpdateTruncated = errors.New("protocol: truncated update encoding")

// AppendBinary appends the wire encoding of u to dst.
func (u Update) AppendBinary(dst []byte) []byte {
	return u.appendWith(dst, vclock.VC.AppendBinary)
}

// appendWith appends u with the clock field produced by encClock — the
// seam the metadata codec plugs into. Every other field keeps the
// layout above, so the plain path (WAL, snapshots, codec-off wire)
// stays byte-identical.
func (u Update) appendWith(dst []byte, encClock func(vclock.VC, []byte) []byte) []byte {
	dst = binary.AppendVarint(dst, int64(u.ID.Proc))
	dst = binary.AppendVarint(dst, int64(u.ID.Seq))
	dst = binary.AppendVarint(dst, int64(u.Var))
	dst = binary.AppendVarint(dst, u.Val)
	dst = encClock(u.Clock, dst)
	dst = binary.AppendVarint(dst, int64(u.Prev.Proc))
	dst = binary.AppendVarint(dst, int64(u.Prev.Seq))
	dst = binary.AppendVarint(dst, int64(u.Round))
	dst = binary.AppendVarint(dst, int64(u.Slot))
	dst = binary.AppendVarint(dst, int64(u.BatchSize))
	var flags uint64
	if u.Marker {
		flags |= 1
	}
	if u.ReadReq {
		flags |= 2
	}
	if u.ReadReply {
		flags |= 4
	}
	dst = binary.AppendUvarint(dst, flags)
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (u Update) MarshalBinary() ([]byte, error) {
	return u.AppendBinary(make([]byte, 0, 32+2*u.Clock.Len())), nil
}

// DecodeUpdate decodes one update from the front of buf, returning it
// and the number of bytes consumed.
func DecodeUpdate(buf []byte) (Update, int, error) {
	return decodeUpdateWith(buf, vclock.DecodeVC)
}

// decodeUpdateWith decodes one update with the clock field read by
// decClock, the decoding seam matching appendWith.
func decodeUpdateWith(buf []byte, decClock func([]byte) (vclock.VC, int, error)) (Update, int, error) {
	var u Update
	off := 0
	readV := func() (int64, error) {
		v, k := binary.Varint(buf[off:])
		if k <= 0 {
			return 0, ErrUpdateTruncated
		}
		off += k
		return v, nil
	}
	var proc, seq, vr, val int64
	for _, dst := range []*int64{&proc, &seq, &vr, &val} {
		v, err := readV()
		if err != nil {
			return u, 0, err
		}
		*dst = v
	}
	u.ID = history.WriteID{Proc: int(proc), Seq: int(seq)}
	u.Var = int(vr)
	u.Val = val

	clock, k, err := decClock(buf[off:])
	if err != nil {
		return u, 0, fmt.Errorf("protocol: update clock: %w", err)
	}
	if clock.Len() > 0 {
		u.Clock = clock
	}
	off += k

	var pp, ps, round, slot, size int64
	for _, dst := range []*int64{&pp, &ps, &round, &slot, &size} {
		v, err := readV()
		if err != nil {
			return u, 0, err
		}
		*dst = v
	}
	u.Prev = history.WriteID{Proc: int(pp), Seq: int(ps)}
	u.Round, u.Slot, u.BatchSize = int(round), int(slot), int(size)

	flags, k2 := binary.Uvarint(buf[off:])
	if k2 <= 0 {
		return u, 0, ErrUpdateTruncated
	}
	off += k2
	u.Marker = flags&1 != 0
	u.ReadReq = flags&2 != 0
	u.ReadReply = flags&4 != 0
	return u, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (u *Update) UnmarshalBinary(data []byte) error {
	d, n, err := DecodeUpdate(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("protocol: %d trailing bytes after update", len(data)-n)
	}
	*u = d
	return nil
}
