package trace

import (
	"strings"
	"testing"

	"repro/internal/history"
)

func TestDiagramRender(t *testing.T) {
	out := Diagram{}.Render(sampleLog())
	for _, frag := range []string{
		"time", "p1", "p2",
		"w x1=1",    // issue
		"->w1#1",    // send
		"?w1#2 BUF", // buffered receipt
		"+w1#1",     // apply
		"r x1=2",    // return
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("diagram missing %q:\n%s", frag, out)
		}
	}
	// Rows sorted by time: first data row is t=0, last t=30.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(strings.TrimSpace(lines[2]), "0 ") {
		t.Errorf("first row not t=0:\n%s", out)
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[len(lines)-1]), "30 ") {
		t.Errorf("last row not t=30:\n%s", out)
	}
}

func TestDiagramTruncation(t *testing.T) {
	out := Diagram{MaxRows: 2}.Render(sampleLog())
	if !strings.Contains(out, "more timestamps") {
		t.Fatalf("truncation note missing:\n%s", out)
	}
}

func TestDiagramWritingSemanticsLabels(t *testing.T) {
	l := NewLog(2, 1)
	w := history.WriteID{Proc: 0, Seq: 1}
	l.Append(Event{Kind: Discard, Proc: 1, Time: 5, Write: w})
	l.Append(Event{Kind: Drop, Proc: 1, Time: 9, Write: w})
	l.Append(Event{Kind: Token, Proc: 0, Time: 9})
	out := Diagram{}.Render(l)
	for _, frag := range []string{"~w1#1", "xw1#1", "tok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}
