package conformance

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/service"
)

// TestChaosTracingForensics is the end-to-end tracing gate: a chaos
// conformance run with tracing on must produce tail-sampled traces on
// both sides of the wire, every client timeline must account for the
// client-observed latency (stage sums match the total within slack),
// the server's echoed stages must join the client record by trace ID,
// and a traced write must link into the cluster's causal-propagation
// spans via its (proc, seq) identity.
func TestChaosTracingForensics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tracing forensics is not a -short test")
	}
	const seed = 7
	observer := obs.NewObserver(obs.Options{Procs: 3, Protocol: "OptP"})
	ch := &chaosHarness{}
	chaos := netchaos.Config{
		Seed:      seed,
		KillProb:  0.01,
		StallProb: 0.02,
		StallMax:  3 * time.Millisecond,
		TruncProb: 0.005,
	}
	ch.Harness = New(t,
		core.Config{
			Processes: 3, Variables: 4,
			MinDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: seed,
			Obs: observer,
		},
		service.Config{
			WaitTimeout: 10 * time.Second,
			Metrics:     observer.Registry(),
			WrapListener: func(ln net.Listener) net.Listener {
				wrapped := netchaos.Wrap(ln, chaos)
				ch.ln = wrapped.(*netchaos.Listener)
				return wrapped
			},
		})

	// Every call carries trace context (TraceSample 1), so both
	// recorders retain every request via the force-sample flag.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const sessions, rounds = 4, 15
	clients := make([]*client.Client, sessions)
	for i := range clients {
		c, err := client.DialConfig(client.Config{Addr: ch.Server.Addr(), TraceSample: 1})
		if err != nil {
			t.Fatalf("DialConfig: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := ch.Track(fmt.Sprintf("traced-%d", i), clients[i].Session())
			x := i
			for round := int64(1); round <= rounds; round++ {
				p := (int(round) + i) % 3
				if err := s.Use(p).Write(ctx, x, round); err != nil {
					t.Errorf("traced-%d write round %d: %v", i, round, err)
					return
				}
				if _, err := s.Use((p+1)%3).Read(ctx, x); err != nil {
					t.Errorf("traced-%d read round %d: %v", i, round, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	auditChaosRun(t, ch)

	// Server side retained traces.
	srvRecs := ch.Server.Trace().Records()
	if len(srvRecs) == 0 {
		t.Fatal("server retained zero traces despite force-sampled requests")
	}
	srvByID := map[uint64]bool{}
	for _, r := range srvRecs {
		if r.TraceID != 0 {
			srvByID[r.TraceID] = true
		}
		if sum := r.StageSum(); sum > r.TotalNs {
			t.Errorf("server trace %x: stage sum %d exceeds total %d", r.TraceID, sum, r.TotalNs)
		}
	}

	// Client side: every timeline must account for the observed call
	// latency. The stage marks partition the span's wall clock, so the
	// unattributed remainder is only scheduling gaps between marks.
	joined, linked := 0, 0
	spanSet := map[[2]int]bool{}
	for _, sp := range observer.Spans() {
		spanSet[[2]int{sp.WriteProc, sp.WriteSeq}] = true
	}
	var cliRecs int
	for _, c := range clients {
		for _, r := range c.Trace().Records() {
			cliRecs++
			sum := r.StageSum()
			if sum > r.TotalNs {
				t.Errorf("client trace %x: stage sum %d exceeds total %d", r.TraceID, sum, r.TotalNs)
			}
			if slack := r.TotalNs/4 + 10_000_000; r.TotalNs-sum > slack {
				t.Errorf("client trace %x: %dns of %dns unattributed (> %dns slack)",
					r.TraceID, r.TotalNs-sum, r.TotalNs, slack)
			}
			if len(r.ServerStages) > 0 {
				joined++
				if ss := r.ServerStageSum(); ss > r.TotalNs {
					t.Errorf("client trace %x: echoed server stages %dns exceed client total %dns",
						r.TraceID, ss, r.TotalNs)
				}
				if !srvByID[r.TraceID] {
					t.Errorf("client trace %x has echoed stages but no server record", r.TraceID)
				}
			}
			if r.Kind == "write" && r.WriteSeq > 0 && spanSet[[2]int{r.WriteProc, r.WriteSeq}] {
				linked++
			}
		}
	}
	if cliRecs == 0 {
		t.Fatal("clients retained zero traces despite TraceSample=1")
	}
	if joined == 0 {
		t.Error("no client trace carried echoed server stages; the wire echo never round-tripped")
	}
	if linked == 0 {
		t.Error("no traced write linked into a causal-propagation span by (proc, seq)")
	}
	t.Logf("tracing: %d server records, %d client records, %d joined, %d span-linked",
		len(srvRecs), cliRecs, joined, linked)
}
