package history

import "fmt"

// This file implements the *serialization* formulation of causal
// memory, due to Ahamad et al. [1]: a history is causally consistent
// for process p_i iff there is a total order ("causal serialization")
// of A_i = {all writes} ∪ {p_i's reads} that respects →co and in which
// every read returns the value of the latest preceding write to its
// variable (⊥ if none).
//
// The paper's Definition 2 (every read legal) is implied by
// serializability but is strictly weaker: a process whose reads
// oscillate between two concurrent writes (r(x)a; r(x)a'; r(x)a) has
// only legal reads yet admits no serialization. See the package tests
// for the worked counterexample. Protocol-generated executions always
// satisfy the stronger form (replicas overwrite monotonically), which
// checker.SerializationAudit verifies in linear time from the trace;
// the exponential search here exists for analyzing hand-written
// histories.

// CausalSerialization searches for a causal serialization of process
// proc's view. It returns the order as global op indices and whether
// one exists. maxOps bounds the view size (the search is exponential in
// the worst case); views larger than maxOps return an error.
func (c *Causality) CausalSerialization(proc, maxOps int) ([]int, bool, error) {
	// View: all writes + proc's reads.
	var view []int
	for i, o := range c.h.ops {
		if o.IsWrite() || o.Proc == proc {
			view = append(view, i)
		}
	}
	if len(view) > maxOps {
		return nil, false, fmt.Errorf("history: view of p%d has %d ops (limit %d)", proc+1, len(view), maxOps)
	}
	if len(view) > 64 {
		return nil, false, fmt.Errorf("history: view of p%d has %d ops (bitmask limit 64)", proc+1, len(view))
	}

	// Precompute, per view position, the mask of view-internal →co
	// predecessors.
	pos := make(map[int]int, len(view)) // global idx → view idx
	for vi, gi := range view {
		pos[gi] = vi
	}
	preds := make([]uint64, len(view))
	for vi, gi := range view {
		for vj, gj := range view {
			if vi != vj && c.Before(gj, gi) {
				preds[vi] |= 1 << uint(vj)
			}
		}
	}

	type valKey struct {
		mask uint64
		// lastWrite[x] as a fingerprint: the serialization's outcome
		// depends on the most recent write per variable, not just the
		// placed set.
		vals string
	}
	seen := make(map[valKey]bool)

	lastWrite := make([]WriteID, c.h.NumVars)
	order := make([]int, 0, len(view))

	var search func(mask uint64) bool
	search = func(mask uint64) bool {
		if mask == (uint64(1)<<uint(len(view)))-1 {
			return true
		}
		key := valKey{mask, fmt.Sprint(lastWrite)}
		if seen[key] {
			return false
		}
		seen[key] = true
		for vi, gi := range view {
			bit := uint64(1) << uint(vi)
			if mask&bit != 0 || preds[vi]&^mask != 0 {
				continue // placed, or some predecessor missing
			}
			o := c.h.ops[gi]
			if o.IsRead() {
				// A read is placeable iff the current value matches.
				if lastWrite[o.Var] != o.From {
					continue
				}
				order = append(order, gi)
				if search(mask | bit) {
					return true
				}
				order = order[:len(order)-1]
				continue
			}
			// Write: place it, updating the variable.
			saved := lastWrite[o.Var]
			lastWrite[o.Var] = o.ID
			order = append(order, gi)
			if search(mask | bit) {
				return true
			}
			order = order[:len(order)-1]
			lastWrite[o.Var] = saved
		}
		return false
	}

	if !search(0) {
		return nil, false, nil
	}
	out := make([]int, len(order))
	copy(out, order)
	return out, true, nil
}

// Serializable reports whether every process's view admits a causal
// serialization (the Ahamad et al. definition of causal consistency).
func (c *Causality) Serializable(maxOps int) (bool, error) {
	for p := 0; p < c.h.NumProcs(); p++ {
		_, ok, err := c.CausalSerialization(p, maxOps)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// VerifySerialization checks that a proposed order is a causal
// serialization of proc's view: it contains exactly the view's ops,
// respects →co, and every read returns the latest preceding write.
func (c *Causality) VerifySerialization(proc int, order []int) error {
	want := make(map[int]bool)
	for i, o := range c.h.ops {
		if o.IsWrite() || o.Proc == proc {
			want[i] = true
		}
	}
	if len(order) != len(want) {
		return fmt.Errorf("history: order has %d ops, view has %d", len(order), len(want))
	}
	placed := make(map[int]int, len(order))
	lastWrite := make([]WriteID, c.h.NumVars)
	for pos, gi := range order {
		if !want[gi] {
			return fmt.Errorf("history: op %v not in p%d's view", c.h.ops[gi], proc+1)
		}
		if _, dup := placed[gi]; dup {
			return fmt.Errorf("history: op %v placed twice", c.h.ops[gi])
		}
		placed[gi] = pos
		o := c.h.ops[gi]
		if o.IsRead() {
			if lastWrite[o.Var] != o.From {
				return fmt.Errorf("history: at position %d, %v reads %v but latest write is %v",
					pos, o, o.From, lastWrite[o.Var])
			}
		} else {
			lastWrite[o.Var] = o.ID
		}
	}
	for gi := range want {
		for gj := range want {
			if c.Before(gi, gj) && placed[gi] > placed[gj] {
				return fmt.Errorf("history: order violates →co: %v before %v", c.h.ops[gi], c.h.ops[gj])
			}
		}
	}
	return nil
}
