package history

import (
	"fmt"
	"sort"
	"strings"
)

// WriteGraph is the write causality graph of Section 4.3: a DAG whose
// vertices are the writes of a history, with an edge w → w' iff
// w →co⁰ w' (w is an *immediate* predecessor of w': no write w” lies
// strictly between them wrt →co). It is the transitive reduction of →co
// restricted to writes.
type WriteGraph struct {
	// Vertices in flattened history order.
	Vertices []WriteID
	// Edges[v] lists the immediate successors of Vertices[v] as vertex
	// indices, sorted.
	Edges [][]int

	index map[WriteID]int
}

// WriteGraph computes the write causality graph from the →co closure.
func (c *Causality) WriteGraph() *WriteGraph {
	writes := c.h.Writes() // global op indices of writes, flattened order
	g := &WriteGraph{index: make(map[WriteID]int, len(writes))}
	for v, gi := range writes {
		g.Vertices = append(g.Vertices, c.h.ops[gi].ID)
		g.index[c.h.ops[gi].ID] = v
	}
	g.Edges = make([][]int, len(writes))
	for a, ga := range writes {
		for b, gb := range writes {
			if a == b || !c.Before(ga, gb) {
				continue
			}
			// Immediate iff no write w'' with ga →co w'' →co gb, i.e.
			// succ(ga) ∩ pred(gb) contains no write.
			immediate := true
			for _, gm := range writes {
				if gm != ga && gm != gb && c.succ[ga].has(gm) && c.pred[gb].has(gm) {
					immediate = false
					break
				}
			}
			if immediate {
				g.Edges[a] = append(g.Edges[a], b)
			}
		}
	}
	for _, e := range g.Edges {
		sort.Ints(e)
	}
	return g
}

// VertexOf returns the vertex index of id, or -1.
func (g *WriteGraph) VertexOf(id WriteID) int {
	if v, ok := g.index[id]; ok {
		return v
	}
	return -1
}

// ImmediatePredecessors returns the IDs of the immediate →co⁰
// predecessors of id. Per the paper there are at most n of them, one per
// process.
func (g *WriteGraph) ImmediatePredecessors(id WriteID) []WriteID {
	v := g.VertexOf(id)
	if v < 0 {
		return nil
	}
	var preds []WriteID
	for a, succs := range g.Edges {
		for _, b := range succs {
			if b == v {
				preds = append(preds, g.Vertices[a])
			}
		}
	}
	return preds
}

// EdgeList returns the edges as "w1#1 -> w2#1" strings, sorted, a stable
// form for tests and the Figure 7 renderer.
func (g *WriteGraph) EdgeList() []string {
	var out []string
	for a, succs := range g.Edges {
		for _, b := range succs {
			out = append(out, fmt.Sprintf("%v -> %v", g.Vertices[a], g.Vertices[b]))
		}
	}
	sort.Strings(out)
	return out
}

// NumEdges returns the number of edges.
func (g *WriteGraph) NumEdges() int {
	n := 0
	for _, e := range g.Edges {
		n += len(e)
	}
	return n
}

// DOT renders the graph in Graphviz format with operations labelled in
// the paper's notation.
func (g *WriteGraph) DOT(h *History) string {
	var b strings.Builder
	b.WriteString("digraph writeco {\n  rankdir=TB;\n")
	for v, id := range g.Vertices {
		label := id.String()
		if gi := h.WriteIndex(id); gi >= 0 {
			label = h.Ops()[gi].String()
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for a, succs := range g.Edges {
		for _, bb := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a, bb)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
