GO ?= go

.PHONY: check ci build test vet race bench smoke throughput audit-bench fuzz vuln clean

## check: the full gate — vet, build, tests, and a short race pass.
check: vet build test race

## ci: what .github/workflows/ci.yml runs — the full gate plus the
## dsmbench smoke sweep, the hot-path throughput gate and the offline
## audit gate (their dsmbench/v1 scorecards are uploaded as CI
## artifacts) plus a vulnerability scan when govulncheck is on PATH.
ci: check smoke throughput audit-bench vuln

## smoke: the fast dsmbench subset (visibility, ws, obsoverhead) with
## the machine-readable scorecard written to smoke-scorecard.json.
smoke:
	$(GO) run ./cmd/dsmbench -exp smoke -json smoke-scorecard.json

## throughput: the live hot-path scorecard, gated against the committed
## BENCH_throughput.json baseline — fails on a >20% ops/s regression.
throughput:
	$(GO) run ./cmd/dsmbench -exp throughput-smoke -ops 20000 \
		-baseline BENCH_throughput.json -json throughput-scorecard.json

## audit-bench: the offline-checker scaling gate — one pass over the
## BenchmarkAudit ladder, the fast-vs-dense equivalence property test
## under the race detector, then the audit-scale scorecard gated
## against the committed BENCH_checker.json baseline (fails when any
## shared trace size audits >20% slower). The 1M rung of the baseline
## is measurement-only and is ignored by the gate.
audit-bench:
	$(GO) test -run '^$$' -bench '^BenchmarkAudit$$' -benchtime=1x ./internal/checker
	$(GO) test -race -run 'TestPropertyAuditEquivalence|TestPropertyFastDenseEquivalence' \
		./internal/checker ./internal/history
	$(GO) run ./cmd/dsmbench -exp audit-scale \
		-baseline BENCH_checker.json -json audit-scorecard.json

## vuln: govulncheck over the whole module; skipped quietly when the
## tool isn't installed (it is not vendored and CI may run offline).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: race-detector pass over the library; short mode keeps the
## soak and wide-sweep tests out of the hot path.
race:
	$(GO) test -race -short ./internal/...

## bench: the experiment sweeps as runnable benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

## fuzz: a brief fuzzing burst on the scenario parser (corpus seeds
## under internal/scenario/testdata replay in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/scenario

clean:
	$(GO) clean ./...
	rm -f smoke-scorecard.json throughput-scorecard.json audit-scorecard.json
