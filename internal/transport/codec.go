package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// Codec wraps a Transport with the causality-metadata codec: every
// protocol message is encoded through the per-link UpdateEncoder and
// decoded back through the matching UpdateDecoder before it enters the
// wrapped transport, exactly as real wire bytes would round-trip. The
// in-process transports ship Update structs, not bytes, so this wrapper
// is what makes codec-on runs exercise (and account) the encoding on
// the built-in channel stack — chaos, reliability sublayer, WAL and
// heartbeats included. Heartbeats and acks carry no update and bypass
// the codec.
//
// Encode and decode happen back-to-back under one per-link lock, so
// encoder and decoder state can never diverge, whatever the delivery
// order below. Retransmissions happen underneath the wrapper (the
// reliability sublayer stores the already-recoded message), so a
// re-sent frame never re-encodes.
type Codec struct {
	inner Transport
	procs int
	mode  protocol.MetaMode
	links []codecLink

	frames       atomic.Uint64
	metaBytes    atomic.Uint64
	payloadBytes atomic.Uint64
}

// codecLink is the per-(from,to) codec state.
type codecLink struct {
	mu  sync.Mutex
	enc *protocol.UpdateEncoder
	dec *protocol.UpdateDecoder
	buf []byte
}

// CodecStats is a snapshot of the wrapper's byte accounting.
type CodecStats struct {
	// Frames is the number of protocol messages recoded.
	Frames uint64
	// MetaBytes is the total encoded size of the clock fields — the
	// causality metadata share of the traffic.
	MetaBytes uint64
	// PayloadBytes is the total encoded size of everything else.
	PayloadBytes uint64
}

// WithCodec wraps inner for a procs-process cluster. With MetaOff the
// wrapper still recodes through the legacy format (useful for byte
// accounting), so callers normally only wrap when mode.Enabled().
func WithCodec(inner Transport, procs int, mode protocol.MetaMode) *Codec {
	c := &Codec{inner: inner, procs: procs, mode: mode, links: make([]codecLink, procs*procs)}
	for i := range c.links {
		c.links[i].enc = protocol.NewUpdateEncoder(mode)
		c.links[i].dec = protocol.NewUpdateDecoder(mode)
	}
	return c
}

// Mode returns the wrapper's codec mode.
func (c *Codec) Mode() protocol.MetaMode { return c.mode }

// Register implements Transport.
func (c *Codec) Register(id int, h Handler) { c.inner.Register(id, h) }

// Flush implements Transport.
func (c *Codec) Flush() { c.inner.Flush() }

// Close implements Transport.
func (c *Codec) Close() error { return c.inner.Close() }

// Send implements Transport: protocol messages are recoded on their
// link; control frames (heartbeats, acks) pass through untouched.
func (c *Codec) Send(m Message) {
	if !m.Heartbeat && !m.Ack {
		m.Update = c.recode(m.From, m.To, m.Update)
	}
	c.inner.Send(m)
}

// SendAll implements Broadcaster. The broadcast fans out through the
// per-destination recode — each link's delta chain is its own — so the
// wrapped transport's batched accept is traded for per-link encodes,
// the same cost a real network pays.
func (c *Codec) SendAll(from int, u protocol.Update) {
	for q := 0; q < c.procs; q++ {
		if q != from {
			c.Send(Message{From: from, To: q, Update: u})
		}
	}
}

// recode runs u through the link's encoder and decoder, returning the
// decoded update (what the wire would have delivered) and folding the
// byte split into the counters.
func (c *Codec) recode(from, to int, u protocol.Update) protocol.Update {
	l := &c.links[from*c.procs+to]
	l.mu.Lock()
	buf, meta := l.enc.Append(l.buf[:0], u)
	l.buf = buf
	out, n, decMeta, err := l.dec.Decode(buf)
	l.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("transport: codec %d->%d: %v", from, to, err))
	}
	if n != len(buf) || meta != decMeta {
		panic(fmt.Sprintf("transport: codec %d->%d: consumed %d of %d bytes (meta %d vs %d)",
			from, to, n, len(buf), meta, decMeta))
	}
	c.frames.Add(1)
	c.metaBytes.Add(uint64(meta))
	c.payloadBytes.Add(uint64(len(buf) - meta))
	return out
}

// Stats snapshots the byte accounting.
func (c *Codec) Stats() CodecStats {
	return CodecStats{
		Frames:       c.frames.Load(),
		MetaBytes:    c.metaBytes.Load(),
		PayloadBytes: c.payloadBytes.Load(),
	}
}

// RegisterMetrics publishes the byte split on reg as scrape-time
// counters, so the metadata share of wire traffic is visible live:
//
//	dsm_net_meta_bytes_total, dsm_net_payload_bytes_total,
//	dsm_net_frames_total
func (c *Codec) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	labels = append(labels, obs.L("codec", c.mode.String()))
	reg.CounterFunc("dsm_net_meta_bytes_total",
		"bytes of causality metadata (encoded clock fields) shipped on inter-replica links",
		func() uint64 { return c.metaBytes.Load() }, labels...)
	reg.CounterFunc("dsm_net_payload_bytes_total",
		"bytes of non-clock update payload shipped on inter-replica links",
		func() uint64 { return c.payloadBytes.Load() }, labels...)
	reg.CounterFunc("dsm_net_frames_total",
		"protocol messages recoded by the metadata codec",
		func() uint64 { return c.frames.Load() }, labels...)
}

// SendTo implements Multicaster, fanning out through the
// per-destination recode exactly like SendAll.
func (c *Codec) SendTo(from int, dests []int, u protocol.Update) {
	for _, q := range dests {
		if q != from {
			c.Send(Message{From: from, To: q, Update: u})
		}
	}
}
