// Package history implements the paper's shared-memory model
// (Section 2): read/write operations, local and global histories, the
// causal-order relation →co, legal reads, causally consistent histories
// (Definitions 1–2), causal pasts, and the write causality graph of
// Section 4.3.
//
// Processes and variables are 0-based indices throughout the codebase;
// renderers translate to the paper's 1-based names (p1, x1, ...).
package history

import "fmt"

// Kind distinguishes read and write operations.
type Kind int

// The two operation kinds of the model.
const (
	Read Kind = iota
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// WriteID names a write operation globally: the Seq-th write issued by
// process Proc (Seq starts at 1). The zero WriteID denotes the initial
// value ⊥ of every memory location.
type WriteID struct {
	Proc int
	Seq  int
}

// Bottom is the WriteID of the initial value ⊥.
var Bottom = WriteID{}

// IsBottom reports whether id denotes the initial value.
func (id WriteID) IsBottom() bool { return id == Bottom }

// String renders the ID as "w_{p+1}^{seq}" style, e.g. "w1#2".
func (id WriteID) String() string {
	if id.IsBottom() {
		return "⊥"
	}
	return fmt.Sprintf("w%d#%d", id.Proc+1, id.Seq)
}

// Op is a single read or write operation of a history.
type Op struct {
	Kind Kind
	Proc int   // issuing process, 0-based
	Var  int   // memory location, 0-based
	Val  int64 // value written (Write) or returned (Read)

	// ID identifies a Write; it is the zero value for Reads.
	ID WriteID
	// From identifies, for a Read, the write whose value was returned;
	// Bottom means the read returned the initial value ⊥.
	From WriteID
}

// IsWrite reports whether the operation is a write.
func (o Op) IsWrite() bool { return o.Kind == Write }

// IsRead reports whether the operation is a read.
func (o Op) IsRead() bool { return o.Kind == Read }

// String renders the operation in the paper's notation, e.g.
// "w1(x1)5" or "r2(x1)5".
func (o Op) String() string {
	if o.IsWrite() {
		return fmt.Sprintf("w%d(x%d)%d", o.Proc+1, o.Var+1, o.Val)
	}
	return fmt.Sprintf("r%d(x%d)%d", o.Proc+1, o.Var+1, o.Val)
}

// OpRef locates an operation inside a History: process index and the
// position of the operation in that process's local history.
type OpRef struct {
	Proc  int
	Index int
}

// String renders the reference as "p1[0]".
func (r OpRef) String() string {
	return fmt.Sprintf("p%d[%d]", r.Proc+1, r.Index)
}
