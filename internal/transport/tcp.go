package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/protocol"
)

// TCPNet is a Transport over real loopback TCP sockets: every process
// listens on 127.0.0.1 and keeps one outbound connection per peer.
// Frames are length-prefixed (uvarint) encoded updates plus a one-byte
// sender id, so the receiving end reconstructs the Message exactly.
//
// Per-link ordering is whatever TCP provides — FIFO — so this transport
// models the common deployment; cross-link reordering (the source of
// write delays) still happens freely.
type TCPNet struct {
	procs    int
	handlers []atomic.Pointer[Handler]

	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns [][]net.Conn // conns[from][to], lazily dialed

	inflight sync.WaitGroup
	accept   sync.WaitGroup
	closed   atomic.Bool
}

// NewTCP starts a TCP mesh for n processes on loopback.
func NewTCP(n int) (*TCPNet, error) {
	if n < 1 || n > 255 {
		return nil, fmt.Errorf("transport: tcp procs = %d (want 1..255, sender id is one frame byte)", n)
	}
	t := &TCPNet{
		procs:    n,
		handlers: make([]atomic.Pointer[Handler], n),
		conns:    make([][]net.Conn, n),
	}
	for i := range t.conns {
		t.conns[i] = make([]net.Conn, n)
	}
	for p := 0; p < n; p++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen for p%d: %w", p+1, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.accept.Add(1)
		go t.acceptLoop(p, ln)
	}
	return t, nil
}

// Addr returns the listen address of process p (for diagnostics).
func (t *TCPNet) Addr(p int) string { return t.addrs[p] }

// Register implements Transport.
func (t *TCPNet) Register(id int, h Handler) {
	if id < 0 || id >= t.procs {
		panic(fmt.Sprintf("transport: Register(%d) out of range", id))
	}
	t.handlers[id].Store(&h)
}

// Send implements Transport: it frames and writes the message on the
// (lazily dialed) from→to connection. Writes to one link are serialized
// by a per-link mutex embedded in conn access; TCP preserves their
// order.
func (t *TCPNet) Send(m Message) {
	if t.closed.Load() {
		return
	}
	if m.To < 0 || m.To >= t.procs || m.From < 0 || m.From >= t.procs || m.To == m.From {
		panic(fmt.Sprintf("transport: bad route %d -> %d", m.From, m.To))
	}
	t.inflight.Add(1)
	// Synchronous framing keeps per-link FIFO without extra goroutines;
	// loopback writes are fast and the kernel buffers them.
	defer t.inflight.Done()

	conn, err := t.conn(m.From, m.To)
	if err != nil {
		if t.closed.Load() {
			return
		}
		panic(fmt.Sprintf("transport: dial %d->%d: %v", m.From, m.To, err))
	}
	payload := m.Update.AppendBinary([]byte{byte(m.From)})
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	t.mu.Lock()
	_, err = conn.Write(frame)
	t.mu.Unlock()
	if err != nil && !t.closed.Load() {
		panic(fmt.Sprintf("transport: write %d->%d: %v", m.From, m.To, err))
	}
}

// conn returns (dialing if needed) the from→to connection.
func (t *TCPNet) conn(from, to int) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.conns[from][to]; c != nil {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, err
	}
	t.conns[from][to] = c
	return c, nil
}

// acceptLoop serves inbound connections for process p.
func (t *TCPNet) acceptLoop(p int, ln net.Listener) {
	defer t.accept.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.accept.Add(1)
		go func() {
			defer t.accept.Done()
			t.readLoop(p, conn)
		}()
	}
}

// readLoop decodes frames from one inbound connection and dispatches
// them to p's handler.
func (t *TCPNet) readLoop(p int, conn net.Conn) {
	defer conn.Close()
	r := newByteReader(conn)
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		if len(buf) < 1 {
			return
		}
		from := int(buf[0])
		u, _, err := protocol.DecodeUpdate(buf[1:])
		if err != nil {
			if !t.closed.Load() {
				panic(fmt.Sprintf("transport: decode frame for p%d: %v", p+1, err))
			}
			return
		}
		hp := t.handlers[p].Load()
		if hp == nil {
			panic(fmt.Sprintf("transport: no handler registered for process %d", p))
		}
		(*hp)(Message{From: from, To: p, Update: u})
	}
}

// Flush implements Transport. TCP sends are synchronous on the sender
// side; Flush waits for sends in progress. Delivery on the receiver
// side is confirmed by the callers' own accounting (core.Quiesce), as
// with any real network.
func (t *TCPNet) Flush() {
	t.inflight.Wait()
}

// Close implements Transport.
func (t *TCPNet) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	t.inflight.Wait()
	t.mu.Lock()
	for _, row := range t.conns {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	t.mu.Unlock()
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.accept.Wait()
	return nil
}

// byteReader adapts a net.Conn to io.ByteReader for ReadUvarint while
// keeping buffered semantics minimal (one byte at a time is fine for
// the tiny frame headers; payloads use ReadFull on the same reader).
type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// ReadByte implements io.ByteReader.
func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}

// Read implements io.Reader.
func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
