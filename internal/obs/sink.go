package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// JSONLSink streams trace events as JSON Lines to a writer while the
// run executes — one trace.JSONEvent document per line, the same
// schema Log.WriteJSON uses post-hoc. Record never blocks the caller:
// events queue in a bounded ring (a buffered channel) drained by a
// background goroutine, and when the consumer cannot keep up the
// overflow is counted and dropped instead of stalling the protocol.
type JSONLSink struct {
	ch      chan trace.Event
	dropped atomic.Uint64

	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	werr error

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

var _ trace.Sink = (*JSONLSink)(nil)

// NewJSONLSink starts a sink writing to w. capacity bounds the event
// ring (0 defaults to 8192). Close flushes and stops the drainer; the
// sink does not close w.
func NewJSONLSink(w io.Writer, capacity int) *JSONLSink {
	if capacity <= 0 {
		capacity = 8192
	}
	s := &JSONLSink{
		ch:   make(chan trace.Event, capacity),
		bw:   bufio.NewWriter(w),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.enc = json.NewEncoder(s.bw)
	go s.drain()
	return s
}

// Record implements trace.Sink: non-blocking enqueue, drop-counting on
// overflow. Records arriving after Close count as drops.
func (s *JSONLSink) Record(e trace.Event) {
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
	}
}

// Dropped returns the number of events lost to ring overflow.
func (s *JSONLSink) Dropped() uint64 { return s.dropped.Load() }

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

// RegisterMetrics exposes the sink's drop counter on a registry.
func (s *JSONLSink) RegisterMetrics(reg *Registry, labels ...Label) {
	reg.GaugeFunc("dsm_sink_dropped_total",
		"trace events dropped by the streaming sink's bounded ring",
		func() int64 { return int64(s.Dropped()) }, labels...)
}

func (s *JSONLSink) encode(e trace.Event) {
	s.mu.Lock()
	if s.werr == nil {
		s.werr = s.enc.Encode(trace.ToJSONEvent(e))
	}
	s.mu.Unlock()
}

func (s *JSONLSink) drain() {
	defer close(s.done)
	for {
		select {
		case e := <-s.ch:
			s.encode(e)
		case <-s.stop:
			// Drain whatever is already queued, then flush and exit.
			for {
				select {
				case e := <-s.ch:
					s.encode(e)
				default:
					s.mu.Lock()
					if err := s.bw.Flush(); s.werr == nil {
						s.werr = err
					}
					s.mu.Unlock()
					return
				}
			}
		}
	}
}

// Close drains queued events, flushes, stops the drainer, and returns
// the first write error. Idempotent; Record stays safe (and counts
// drops) after Close.
func (s *JSONLSink) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
	})
	<-s.done
	return s.Err()
}
