package history

import (
	"errors"
	"math/rand"
	"testing"
)

// mustCausality computes the →co closure of H1 and returns it with the
// global indices of the four writes (wa, wc, wb, wd).
func mustCausality(t *testing.T) (*Causality, *History, [4]int) {
	t.Helper()
	h, ids := H1()
	c, err := h.Causality()
	if err != nil {
		t.Fatal(err)
	}
	var idx [4]int
	for i, id := range ids {
		idx[i] = h.WriteIndex(id)
	}
	return c, h, idx
}

func TestH1CausalFacts(t *testing.T) {
	c, _, idx := mustCausality(t)
	wa, wc, wb, wd := idx[0], idx[1], idx[2], idx[3]

	// The paper's Example 1 facts.
	if !c.Before(wa, wb) {
		t.Error("want w1(x1)a →co w2(x2)b")
	}
	if !c.Before(wa, wc) {
		t.Error("want w1(x1)a →co w1(x1)c")
	}
	if !c.Before(wb, wd) {
		t.Error("want w2(x2)b →co w3(x2)d")
	}
	if !c.Concurrent(wc, wb) {
		t.Error("want w1(x1)c ‖co w2(x2)b")
	}
	if !c.Concurrent(wc, wd) {
		t.Error("want w1(x1)c ‖co w3(x2)d")
	}
	// Transitivity: wa →co wd through wb.
	if !c.Before(wa, wd) {
		t.Error("want w1(x1)a →co w3(x2)d")
	}
}

func TestH1WriteLevelQueries(t *testing.T) {
	c, _, _ := mustCausality(t)
	_, ids := H1()
	wa, wc, wb, wd := ids[0], ids[1], ids[2], ids[3]
	if !c.WriteBefore(wa, wb) || !c.WriteBefore(wb, wd) || !c.WriteBefore(wa, wd) {
		t.Error("WriteBefore facts wrong")
	}
	if c.WriteBefore(wc, wd) || c.WriteBefore(wd, wc) {
		t.Error("wc vs wd should be unordered")
	}
	if !c.WriteConcurrent(wc, wb) || !c.WriteConcurrent(wc, wd) {
		t.Error("WriteConcurrent facts wrong")
	}
	// Bottom is before everything and concurrent with nothing.
	if !c.WriteBefore(Bottom, wa) || c.WriteBefore(wa, Bottom) || c.WriteConcurrent(Bottom, wa) {
		t.Error("Bottom ordering wrong")
	}
}

// TestH1XcoSafe reproduces Table 1 of the paper: the X_co-safe set of
// each apply event is the set of writes in the causal past of the
// written operation (identical at every process).
func TestH1XcoSafe(t *testing.T) {
	c, h, idx := mustCausality(t)
	_, ids := H1()
	wa, wc, wb, wd := ids[0], ids[1], ids[2], ids[3]

	want := map[WriteID][]WriteID{
		wa: nil,
		wc: {wa},
		wb: {wa},
		wd: {wa, wb},
	}
	for i, id := range ids {
		got := c.WritesBefore(idx[i])
		w := want[id]
		if len(got) != len(w) {
			t.Fatalf("X_co-safe(%v) = %v, want %v", id, got, w)
		}
		seen := map[WriteID]bool{}
		for _, g := range got {
			seen[g] = true
		}
		for _, x := range w {
			if !seen[x] {
				t.Fatalf("X_co-safe(%v) = %v, missing %v", id, got, x)
			}
		}
	}
	_ = h
}

func TestCausalPast(t *testing.T) {
	c, h, idx := mustCausality(t)
	wd := idx[3]
	past := c.CausalPast(wd)
	// ↓(w3(x2)d) = {w1(x1)a, r2(x1)a, w2(x2)b, r3(x2)b} = 4 ops.
	if len(past) != 4 {
		t.Fatalf("causal past of wd = %d ops (%v), want 4", len(past), past)
	}
	if c.CausalPastSize(wd) != 4 {
		t.Fatalf("CausalPastSize = %d", c.CausalPastSize(wd))
	}
	for _, j := range past {
		if !c.Before(j, wd) {
			t.Fatalf("past member %v not before wd", h.Ops()[j])
		}
	}
}

func TestTopoRespectsCo(t *testing.T) {
	c, h, _ := mustCausality(t)
	topo := c.Topo()
	pos := make([]int, h.NumOps())
	for i, v := range topo {
		pos[v] = i
	}
	for i := 0; i < h.NumOps(); i++ {
		for j := 0; j < h.NumOps(); j++ {
			if c.Before(i, j) && pos[i] >= pos[j] {
				t.Fatalf("topo violates →co: %v before %v", h.Ops()[i], h.Ops()[j])
			}
		}
	}
}

func TestCyclicHistoryDetected(t *testing.T) {
	// p1: r1(x1)=b; w1(x2)=a   and   p2: r2(x2)=a; w2(x1)=b
	// form a →co cycle through the two read-from edges.
	wa := Op{Kind: Write, Proc: 0, Var: 1, Val: 1, ID: WriteID{0, 1}}
	wb := Op{Kind: Write, Proc: 1, Var: 0, Val: 2, ID: WriteID{1, 1}}
	ra := Op{Kind: Read, Proc: 1, Var: 1, Val: 1, From: wa.ID}
	rb := Op{Kind: Read, Proc: 0, Var: 0, Val: 2, From: wb.ID}
	h, err := FromOps([][]Op{{rb, wa}, {ra, wb}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Causality(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestConcurrentSelf(t *testing.T) {
	c, _, idx := mustCausality(t)
	if c.Concurrent(idx[0], idx[0]) {
		t.Fatal("an op must not be concurrent with itself")
	}
}

// randomHistory builds a random valid history: writes with unique values
// and reads that return the latest value the issuing process could have
// seen (its own last write to the variable), keeping read-from acyclic.
func randomHistory(rng *rand.Rand, nProcs, nVars, nOps int) *History {
	b := NewBuilder(nProcs)
	val := int64(0)
	// lastWrite[x] is a write that exists when a read is issued.
	var written []struct {
		x  int
		v  int64
		id WriteID
		at int // global op count when written
	}
	count := 0
	for i := 0; i < nOps; i++ {
		p := rng.Intn(nProcs)
		x := rng.Intn(nVars)
		if rng.Intn(2) == 0 || len(written) == 0 {
			val++
			id := b.Write(p, x, val)
			written = append(written, struct {
				x  int
				v  int64
				id WriteID
				at int
			}{x, val, id, count})
		} else {
			w := written[rng.Intn(len(written))]
			b.ReadFrom(p, w.x, w.v, w.id)
		}
		count++
	}
	return b.MustFinish()
}

// Property: →co is a strict partial order on random histories —
// irreflexive, antisymmetric, transitive — and Concurrent is symmetric.
func TestRandomHistoriesPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		h := randomHistory(rng, 2+rng.Intn(4), 1+rng.Intn(3), 10+rng.Intn(30))
		c, err := h.Causality()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := h.NumOps()
		for i := 0; i < n; i++ {
			if c.Before(i, i) {
				t.Fatalf("trial %d: reflexive at %d", trial, i)
			}
			for j := 0; j < n; j++ {
				if c.Before(i, j) && c.Before(j, i) {
					t.Fatalf("trial %d: symmetric pair %d,%d", trial, i, j)
				}
				if c.Concurrent(i, j) != c.Concurrent(j, i) {
					t.Fatalf("trial %d: concurrency asymmetric", trial)
				}
				for k := 0; k < n; k++ {
					if c.Before(i, j) && c.Before(j, k) && !c.Before(i, k) {
						t.Fatalf("trial %d: not transitive %d→%d→%d", trial, i, j, k)
					}
				}
			}
		}
	}
}

// Property: process order is always contained in →co.
func TestProcessOrderContained(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := randomHistory(rng, 3, 2, 25)
		c, err := h.Causality()
		if err != nil {
			t.Fatal(err)
		}
		base := 0
		for _, local := range h.Locals {
			for i := 0; i+1 < len(local); i++ {
				if !c.Before(base+i, base+i+1) {
					t.Fatalf("process order edge missing at %d", base+i)
				}
			}
			base += len(local)
		}
	}
}
