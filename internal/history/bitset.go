package history

import "math/bits"

// bitset is a fixed-capacity bit vector used for →co reachability. The
// capacity is fixed at creation; all sets over the same history share a
// word count, which keeps the union loops branch-free.
type bitset []uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// or folds o into b (b |= o).
func (b bitset) or(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// intersects reports whether b ∩ o is non-empty.
func (b bitset) intersects(o bitset) bool {
	for i, w := range o {
		if b[i]&w != 0 {
			return true
		}
	}
	return false
}

// count returns the population count.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// members appends the set's elements in increasing order to dst.
func (b bitset) members(dst []int) []int {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, wi*64+bit)
			w &= w - 1
		}
	}
	return dst
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
